package dist

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"ccp/internal/control"
	"ccp/internal/graph"
	"ccp/internal/obs"
	"ccp/internal/obs/flight"
	"ccp/internal/store"
)

// ClientConfig tunes the transport lifecycle of a RemoteClient: dial and
// retry behavior, redial backoff, and the consecutive-failure circuit
// breaker. The zero value selects production defaults.
type ClientConfig struct {
	// DialTimeout bounds each dial attempt. Default 5s.
	DialTimeout time.Duration
	// MaxRetries is how many additional attempts an idempotent call
	// (evaluate, precompute, info) makes after a transport failure before
	// giving up; each attempt redials if needed. Non-idempotent calls
	// (update, cross-in) are never retried. Default 2.
	MaxRetries int
	// BaseBackoff is the redial delay after the first consecutive dial
	// failure; it doubles per failure up to MaxBackoff and resets on
	// success. Defaults 25ms / 1s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// FailureThreshold is the number of consecutive call failures
	// (transport errors or deadline misses) that open the circuit breaker:
	// the connection is torn down and calls fail fast with ErrCircuitOpen
	// until Cooldown has passed, after which the next call probes the site
	// again. Default 4.
	FailureThreshold int
	// Cooldown is how long an open circuit rejects calls. Default 1s.
	Cooldown time.Duration
	// Dialer opens the transport connection; tests inject failing or
	// fault-wrapped connections here. Default: TCP via net.Dialer.
	Dialer func(ctx context.Context, addr string) (net.Conn, error)
	// Observer, when non-nil, registers per-site transport metrics
	// (redials, retries, circuit transitions, bytes in/out, circuit state)
	// on its registry, labeled by the site's dial address, and feeds
	// transport events (retries, redials, circuit transitions) into its
	// flight recorder.
	Observer *obs.Observer
	// Logger receives the client's structured transport diagnostics
	// (redials, dial failures, circuit transitions). Nil discards them.
	Logger *slog.Logger
}

// withDefaults fills unset config fields with the production defaults.
func (c ClientConfig) withDefaults() ClientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 25 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 4
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.Dialer == nil {
		c.Dialer = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return c
}

// SiteHealth is a point-in-time snapshot of one site client's transport
// health: connection state, the consecutive-failure count feeding the
// circuit breaker, and lifetime redial/retry counters.
type SiteHealth struct {
	// SiteID is the partition id served by the site (-1 before the first
	// successful handshake).
	SiteID int
	// Addr is the site's dial address (empty for in-process clients).
	Addr string
	// Connected reports whether a live connection is up right now.
	Connected bool
	// ConsecutiveFailures counts call failures since the last success.
	ConsecutiveFailures int
	// CircuitOpen reports that calls currently fail fast without touching
	// the network; CircuitUntil is when the next probe is allowed.
	CircuitOpen  bool
	CircuitUntil time.Time
	// Redials counts successful re-established connections (the initial
	// dial excluded); Retries counts per-call transport retries.
	Redials int64
	Retries int64
	// LastError is the most recent transport failure, empty when healthy.
	LastError string
}

// HealthReporter is implemented by site clients that track transport health.
type HealthReporter interface {
	Health() SiteHealth
}

// countConn wraps a net.Conn counting the bytes read (the traffic the
// coordinator receives from the site). Only the client's reader goroutine
// touches the counter.
type countConn struct {
	net.Conn
	read *int64
}

func (c countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	*c.read += int64(n)
	return n, err
}

// countingWriter tees written byte counts into a (nil-safe) obs counter.
type countingWriter struct {
	w   io.Writer
	ctr *obs.Counter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.ctr.Add(int64(n))
	return n, err
}

// clientMetrics are a RemoteClient's registered series — zero-valued (all
// nil) on an unobserved client, where every update is a nil-check no-op.
type clientMetrics struct {
	redials, retries  *obs.Counter
	bytesIn, bytesOut *obs.Counter
	circuitOpened     *obs.Counter
	circuitHalfOpened *obs.Counter
	circuitClosed     *obs.Counter
}

// rpcResult is one routed response plus the bytes it occupied on the wire.
type rpcResult struct {
	resp  *response
	bytes int64
}

// muxConn is one connection generation: a gob stream multiplexing any number
// of in-flight requests, with a single reader goroutine routing responses by
// id. When the reader exits it fails every pending call exactly once and the
// generation is dead for good — the owning RemoteClient then dials a fresh
// generation on the next call instead of serving the stale error forever.
type muxConn struct {
	conn net.Conn

	encMu sync.Mutex // serializes writes; gob encoders are not concurrent-safe
	enc   *gob.Encoder

	read    int64 // total bytes read; owned by the reader goroutine
	bytesIn *obs.Counter

	mu      sync.Mutex
	pending map[uint64]chan rpcResult
	nextID  uint64
	err     error // the transport error that killed this generation
}

func newMuxConn(conn net.Conn, met clientMetrics) *muxConn {
	// Only an observed client pays the writer indirection.
	var w io.Writer = conn
	if met.bytesOut != nil {
		w = countingWriter{w: conn, ctr: met.bytesOut}
	}
	return &muxConn{
		conn:    conn,
		enc:     gob.NewEncoder(w),
		bytesIn: met.bytesIn,
		pending: make(map[uint64]chan rpcResult),
	}
}

// register allocates a request id and parks ch to receive its response.
func (m *muxConn) register(ch chan rpcResult) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return 0, m.err
	}
	m.nextID++
	m.pending[m.nextID] = ch
	return m.nextID, nil
}

// deregister abandons a pending request (caller gave up waiting). The
// response, if it ever arrives, is discarded by the read loop.
func (m *muxConn) deregister(id uint64) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

// readLoop is the generation's only reader: it decodes responses, measures
// the bytes each occupied on the wire (gob reads exactly one length-prefixed
// message per Decode), and routes them to the waiting caller by id.
func (m *muxConn) readLoop() error {
	dec := gob.NewDecoder(countConn{Conn: m.conn, read: &m.read})
	for {
		before := m.read
		resp := new(response)
		if err := dec.Decode(resp); err != nil {
			m.fail(err)
			return err
		}
		n := m.read - before
		m.bytesIn.Add(n)
		m.mu.Lock()
		ch, ok := m.pending[resp.ID]
		delete(m.pending, resp.ID)
		m.mu.Unlock()
		if ok {
			ch <- rpcResult{resp: resp, bytes: n}
		}
	}
}

// fail marks the generation dead and wakes every in-flight call exactly
// once: pending channels are closed, and any register after this returns the
// error immediately (no request can join a dead generation and hang).
func (m *muxConn) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
	m.conn.Close()
}

// RemoteClient talks to a worker site over a multiplexed connection: any
// number of calls can be in flight at once on one conn. Unlike its pre-
// lifecycle ancestor it is not bricked by a transport hiccup — a broken
// connection fails the in-flight calls once, and the next call redials with
// capped exponential backoff. Consecutive failures (transport or deadline)
// open a circuit breaker that fails fast until a cooldown passes. All calls
// take a context; its deadline is enforced locally, carried over the wire,
// and enforced again server-side.
type RemoteClient struct {
	addr string
	cfg  ClientConfig

	mu          sync.Mutex
	conn        *muxConn // live generation, nil when disconnected
	dialing     chan struct{}
	closed      bool
	siteID      int
	consecFails int
	circuit     time.Time // calls fail fast until this instant (zero = closed)
	nextDialAt  time.Time // redial backoff gate
	backoff     time.Duration
	redials     int64
	retries     int64
	dialed      bool // first successful dial done (redials counts the rest)
	tripped     bool // circuit opened and no success seen since
	lastErr     error

	met clientMetrics
	fr  *flight.Recorder
	log *slog.Logger

	// graphs recycles the decode targets of live partial answers: each
	// evaluate decodes its reduced graph into a pooled arena instead of a
	// fresh allocation, and the coordinator returns it with
	// PartialAnswer.Release once merged.
	graphs sync.Pool
}

// Dial connects to a worker site with default lifecycle configuration and
// fetches its identity. ctx bounds the handshake.
func Dial(ctx context.Context, addr string) (*RemoteClient, error) {
	return DialConfig(ctx, addr, ClientConfig{})
}

// DialConfig is Dial with explicit lifecycle configuration.
func DialConfig(ctx context.Context, addr string, cfg ClientConfig) (*RemoteClient, error) {
	c := &RemoteClient{addr: addr, cfg: cfg.withDefaults(), siteID: -1}
	c.fr = c.cfg.Observer.Flight()
	c.log = obs.LoggerOr(c.cfg.Logger)
	if reg := c.cfg.Observer.Registry(); reg != nil {
		l := obs.Label{Key: "site_addr", Value: addr}
		c.met = clientMetrics{
			redials:           reg.Counter("ccp_client_redials_total", "Connections re-established after a transport failure.", l),
			retries:           reg.Counter("ccp_client_retries_total", "Per-call transport retries of idempotent ops.", l),
			bytesIn:           reg.Counter("ccp_client_bytes_in_total", "Bytes received from the site.", l),
			bytesOut:          reg.Counter("ccp_client_bytes_out_total", "Bytes sent to the site.", l),
			circuitOpened:     reg.Counter("ccp_client_circuit_transitions_total", "Circuit-breaker state transitions, by direction.", l, obs.Label{Key: "to", Value: "open"}),
			circuitHalfOpened: reg.Counter("ccp_client_circuit_transitions_total", "Circuit-breaker state transitions, by direction.", l, obs.Label{Key: "to", Value: "half_open"}),
			circuitClosed:     reg.Counter("ccp_client_circuit_transitions_total", "Circuit-breaker state transitions, by direction.", l, obs.Label{Key: "to", Value: "closed"}),
		}
		reg.GaugeFunc("ccp_client_circuit_state",
			"Circuit-breaker position: 0 closed, 1 open, 2 half-open.",
			c.circuitState, l)
		reg.GaugeFunc("ccp_client_connected",
			"Whether a live connection to the site is up (0/1).",
			func() float64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				if c.conn != nil {
					return 1
				}
				return 0
			}, l)
	}
	// The identity handshake is bounded by DialTimeout even when ctx has no
	// deadline of its own: a site that accepts and then stalls must not
	// hang Dial forever.
	hctx := ctx
	if c.cfg.DialTimeout > 0 {
		var cancel context.CancelFunc
		hctx, cancel = context.WithTimeout(ctx, c.cfg.DialTimeout)
		defer cancel()
	}
	resp, _, err := c.roundTrip(hctx, &request{Op: opInfo})
	if err != nil {
		c.Close()
		// A handshake that ran out the dial budget (rather than the
		// caller's own deadline) is a transport-level dial failure.
		var de *DeadlineError
		if errors.As(err, &de) && ctx.Err() == nil {
			err = &TransportError{SiteID: -1, Op: "dial", Err: fmt.Errorf("handshake timed out after %v", c.cfg.DialTimeout)}
		}
		return nil, fmt.Errorf("dist: dialing site %s: %w", addr, err)
	}
	c.mu.Lock()
	c.siteID = resp.SiteID
	c.mu.Unlock()
	return c, nil
}

// acquireConn returns the live connection generation, dialing one (with
// backoff and circuit-breaker gating) if necessary. Concurrent callers
// share one dial.
func (c *RemoteClient) acquireConn(ctx context.Context) (*muxConn, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, errors.New("client closed")
		}
		if c.conn != nil {
			mc := c.conn
			c.mu.Unlock()
			return mc, nil
		}
		if ch := c.dialing; ch != nil {
			c.mu.Unlock()
			select {
			case <-ch:
				continue // re-check: dial finished (either way)
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if until := c.circuit; !until.IsZero() {
			if time.Now().Before(until) {
				err := c.lastErr
				c.mu.Unlock()
				return nil, fmt.Errorf("%w until %s (after: %v)", ErrCircuitOpen, until.Format(time.RFC3339Nano), err)
			}
			c.circuit = time.Time{} // cooldown over: half-open, probe below
			c.met.circuitHalfOpened.Inc()
			c.fr.Record(flight.Circuit, int32(c.siteID), 0, 2, int64(c.consecFails))
		}
		wait := time.Until(c.nextDialAt)
		done := make(chan struct{})
		c.dialing = done
		c.mu.Unlock()

		mc, err := c.dialOnce(ctx, wait)

		c.mu.Lock()
		c.dialing = nil
		close(done)
		if err != nil {
			c.noteFailureLocked(err)
			// Grow the redial backoff; reset on the next success.
			if c.backoff == 0 {
				c.backoff = c.cfg.BaseBackoff
			} else if c.backoff *= 2; c.backoff > c.cfg.MaxBackoff {
				c.backoff = c.cfg.MaxBackoff
			}
			c.nextDialAt = time.Now().Add(c.backoff)
			c.mu.Unlock()
			c.log.Warn("dial failed", "site_addr", c.addr, "err", err)
			return nil, err
		}
		if c.closed {
			c.mu.Unlock()
			mc.fail(errors.New("client closed"))
			return nil, errors.New("client closed")
		}
		c.conn = mc
		c.backoff = 0
		c.nextDialAt = time.Time{}
		redialed := false
		if c.dialed {
			c.redials++
			c.met.redials.Inc()
			c.fr.Record(flight.Redial, int32(c.siteID), 0, c.redials, 0)
			redialed = true
		}
		c.dialed = true
		site, redials := c.siteID, c.redials
		c.mu.Unlock()
		if redialed {
			c.log.Info("reconnected to site", "site", site, "site_addr", c.addr, "redials", redials)
		}
		go func() {
			err := mc.readLoop()
			c.dropConn(mc, err)
		}()
		return mc, nil
	}
}

// dialOnce waits out the backoff window (context permitting) and makes one
// dial attempt bounded by DialTimeout.
func (c *RemoteClient) dialOnce(ctx context.Context, wait time.Duration) (*muxConn, error) {
	if wait > 0 {
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	dctx, cancel := context.WithTimeout(ctx, c.cfg.DialTimeout)
	defer cancel()
	conn, err := c.cfg.Dialer(dctx, c.addr)
	if err != nil {
		return nil, fmt.Errorf("dialing %s: %w", c.addr, err)
	}
	return newMuxConn(conn, c.met), nil
}

// dropConn retires a dead generation so the next call redials.
func (c *RemoteClient) dropConn(mc *muxConn, err error) {
	c.mu.Lock()
	if c.conn == mc {
		c.conn = nil
		c.noteFailureLocked(err)
	}
	c.mu.Unlock()
}

// noteFailureLocked records one call/transport failure and opens the circuit
// at the configured threshold. Callers hold c.mu.
func (c *RemoteClient) noteFailureLocked(err error) {
	c.consecFails++
	if err != nil {
		c.lastErr = err
	}
	if c.consecFails >= c.cfg.FailureThreshold && c.circuit.IsZero() {
		c.circuit = time.Now().Add(c.cfg.Cooldown)
		c.tripped = true
		c.met.circuitOpened.Inc()
		c.fr.Record(flight.Circuit, int32(c.siteID), 0, 1, int64(c.consecFails))
		c.log.Warn("circuit opened", "site", c.siteID, "site_addr", c.addr,
			"consecutive_failures", c.consecFails, "cooldown", c.cfg.Cooldown, "err", err)
		if c.conn != nil {
			// A site that times out call after call is stalled, not slow:
			// tear the generation down so the probe after cooldown starts
			// on a fresh connection.
			mc := c.conn
			c.conn = nil
			go mc.fail(fmt.Errorf("dist: circuit opened: %w", err))
		}
	}
}

// noteDegraded counts a deadline/cancel miss toward the circuit breaker
// without a dead connection.
func (c *RemoteClient) noteDegraded(err error) {
	c.mu.Lock()
	c.noteFailureLocked(err)
	c.mu.Unlock()
}

// noteSuccess resets the failure tracking after any successful exchange.
func (c *RemoteClient) noteSuccess() {
	c.mu.Lock()
	c.consecFails = 0
	c.circuit = time.Time{}
	if c.tripped {
		// A success after a trip closes the circuit (the half-open probe
		// worked).
		c.tripped = false
		c.met.circuitClosed.Inc()
		c.fr.Record(flight.Circuit, int32(c.siteID), 0, 0, 0)
		c.log.Info("circuit closed", "site", c.siteID, "site_addr", c.addr)
	}
	c.lastErr = nil
	c.mu.Unlock()
}

// circuitState samples the breaker position for the scrape-time gauge:
// 0 closed, 1 open (calls fail fast), 2 half-open (cooldown over, awaiting
// a successful probe).
func (c *RemoteClient) circuitState() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case !c.circuit.IsZero() && time.Now().Before(c.circuit):
		return 1
	case c.tripped:
		return 2
	default:
		return 0
	}
}

// Close releases the connection. In-flight calls fail with a TransportError;
// subsequent calls fail immediately.
func (c *RemoteClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	mc := c.conn
	c.conn = nil
	c.mu.Unlock()
	if mc != nil {
		mc.fail(errors.New("client closed"))
	}
	return nil
}

// SiteID implements SiteClient.
func (c *RemoteClient) SiteID() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.siteID
}

// Health implements HealthReporter.
func (c *RemoteClient) Health() SiteHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := SiteHealth{
		SiteID:              c.siteID,
		Addr:                c.addr,
		Connected:           c.conn != nil,
		ConsecutiveFailures: c.consecFails,
		Redials:             c.redials,
		Retries:             c.retries,
	}
	if !c.circuit.IsZero() && time.Now().Before(c.circuit) {
		h.CircuitOpen = true
		h.CircuitUntil = c.circuit
	}
	if c.lastErr != nil {
		h.LastError = c.lastErr.Error()
	}
	return h
}

// Precompute implements SiteClient.
func (c *RemoteClient) Precompute(ctx context.Context) error {
	_, _, err := c.roundTrip(ctx, &request{Op: opPrecompute})
	return err
}

// Evaluate implements SiteClient.
func (c *RemoteClient) Evaluate(ctx context.Context, q control.Query, opts EvalOptions) (*PartialAnswer, int64, error) {
	resp, n, err := c.roundTrip(ctx, &request{
		Op:           opEvaluate,
		S:            int32(q.S),
		T:            int32(q.T),
		UseCache:     opts.UseCache,
		ForcePartial: opts.ForcePartial,
		IfEpoch:      opts.IfEpoch,
		HasIfEpoch:   opts.HasIfEpoch,
		TraceID:      opts.TraceID,
		FlightID:     opts.FlightID,
	})
	if err != nil {
		return nil, 0, err
	}
	pa, err := decodePartial(resp, &c.graphs)
	if err != nil {
		return nil, 0, err
	}
	return pa, n, nil
}

// Update implements SiteClient.
func (c *RemoteClient) Update(ctx context.Context, up StakeUpdate) (UpdateResult, error) {
	resp, _, err := c.roundTrip(ctx, &request{Op: opUpdate, Update: up})
	if err != nil {
		return UpdateResult{}, err
	}
	return resp.UpdateRes, nil
}

// AdjustCrossIn implements SiteClient.
func (c *RemoteClient) AdjustCrossIn(ctx context.Context, v graph.NodeID, delta int) (bool, error) {
	resp, _, err := c.roundTrip(ctx, &request{Op: opCrossIn, S: int32(v), Delta: delta})
	if err != nil {
		return false, err
	}
	return resp.Acted, nil
}

// Epoch fetches the site's current data epoch with an info round trip —
// the cheap way for a routing tier to refresh its staleness watermark after
// a write whose response carries no sequence number.
func (c *RemoteClient) Epoch(ctx context.Context) (uint64, error) {
	resp, _, err := c.roundTrip(ctx, &request{Op: opInfo})
	if err != nil {
		return 0, err
	}
	return resp.DurableSeq, nil
}

// ReplSnapshot fetches the site's consistent bootstrap image for follower
// replication: the CCPP1-encoded partition plus the WAL sequence number it
// covers, and the leader's current head sequence for lag accounting.
func (c *RemoteClient) ReplSnapshot(ctx context.Context) (snapSeq uint64, img []byte, leaderSeq uint64, err error) {
	resp, _, err := c.roundTrip(ctx, &request{Op: opReplSnapshot})
	if err != nil {
		return 0, nil, 0, err
	}
	return resp.SnapSeq, resp.Snapshot, resp.DurableSeq, nil
}

// ReplPull fetches up to max WAL records with sequence numbers strictly
// greater than from. wait > 0 asks the site to long-poll that long before
// answering empty. truncated reports that checkpointing deleted records the
// caller still needs — re-bootstrap via ReplSnapshot. leaderSeq is the
// site's head sequence number at answer time.
func (c *RemoteClient) ReplPull(ctx context.Context, from uint64, max int, wait time.Duration) (recs []store.Record, leaderSeq uint64, truncated bool, err error) {
	resp, _, err := c.roundTrip(ctx, &request{
		Op:         opReplPull,
		FromSeq:    from,
		MaxRecords: max,
		WaitNS:     wait.Nanoseconds(),
	})
	if err != nil {
		return nil, 0, false, err
	}
	if resp.Truncated {
		return nil, resp.DurableSeq, true, nil
	}
	if len(resp.Records) > 0 {
		if recs, err = store.DecodeRecords(resp.Records); err != nil {
			return nil, 0, false, &SiteError{SiteID: c.SiteID(), Op: "repl-pull", Msg: err.Error()}
		}
	}
	return recs, resp.DurableSeq, false, nil
}

// idempotent reports whether an operation may safely be retried after a
// transport failure whose outcome is unknown. Updates and cross-in deltas
// mutate site state and must not be replayed; the replication reads are
// pure reads.
func idempotent(o op) bool {
	switch o {
	case opEvaluate, opPrecompute, opInfo, opReplSnapshot, opReplPull:
		return true
	}
	return false
}

// roundTrip sends one request and waits for its response, returning the
// bytes the response occupied on the wire. Any number of roundTrips may run
// concurrently. Transport failures on idempotent ops are retried up to
// MaxRetries times, redialing as needed; ctx cancellation/deadline returns a
// typed CancelledError/DeadlineError and counts toward the circuit breaker.
func (c *RemoteClient) roundTrip(ctx context.Context, req *request) (*response, int64, error) {
	opname := opName(req.Op)
	attempts := 1
	if idempotent(req.Op) {
		attempts += c.cfg.MaxRetries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.retries++
			c.mu.Unlock()
			c.met.retries.Inc()
			c.fr.Record(flight.Retry, int32(c.SiteID()), req.FlightID, int64(attempt), 0)
			c.log.Debug("retrying call", "site", c.SiteID(), "op", opname, "attempt", attempt, "err", lastErr)
		}
		if err := ctx.Err(); err != nil {
			c.noteDegraded(err)
			return nil, 0, ctxError(c.SiteID(), opname, err)
		}
		resp, n, err, retryable := c.try(ctx, req)
		if err == nil {
			c.noteSuccess()
			return resp, n, nil
		}
		if !retryable {
			return nil, 0, err
		}
		lastErr = err
	}
	return nil, 0, lastErr
}

// try makes one attempt: acquire a connection, send, await the response or
// the context. The extra bool reports whether the failure is retryable
// (transport-level, outcome unknown but op idempotent-safe to resend).
func (c *RemoteClient) try(ctx context.Context, req *request) (*response, int64, error, bool) {
	opname := opName(req.Op)
	mc, err := c.acquireConn(ctx)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, 0, ctxError(c.SiteID(), opname, cerr), false
		}
		return nil, 0, &TransportError{SiteID: c.SiteID(), Op: opname, Err: err}, true
	}

	ch := make(chan rpcResult, 1)
	id, err := mc.register(ch)
	if err != nil {
		return nil, 0, &TransportError{SiteID: c.SiteID(), Op: opname, Err: err}, true
	}
	req.ID = id
	req.DeadlineNS = 0
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			mc.deregister(id)
			c.noteDegraded(context.DeadlineExceeded)
			return nil, 0, ctxError(c.SiteID(), opname, context.DeadlineExceeded), false
		}
		req.DeadlineNS = rem.Nanoseconds()
		mc.conn.SetWriteDeadline(dl)
	} else {
		mc.conn.SetWriteDeadline(time.Time{})
	}

	mc.encMu.Lock()
	err = mc.enc.Encode(req)
	mc.encMu.Unlock()
	if err != nil {
		mc.deregister(id)
		// A failed or partial write poisons the gob stream for every other
		// in-flight call on this generation; retire it.
		mc.fail(fmt.Errorf("sending request: %w", err))
		c.dropConn(mc, err)
		return nil, 0, &TransportError{SiteID: c.SiteID(), Op: opname,
			Err: fmt.Errorf("sending request: %w", err)}, true
	}

	select {
	case r, ok := <-ch:
		if !ok {
			mc.mu.Lock()
			err := mc.err
			mc.mu.Unlock()
			if err == nil {
				err = errors.New("connection closed")
			}
			return nil, 0, &TransportError{SiteID: c.SiteID(), Op: opname,
				Err: fmt.Errorf("reading response: %w", err)}, true
		}
		if r.resp.Err != "" {
			switch r.resp.Code {
			case codeDeadline:
				err := &DeadlineError{SiteID: r.resp.SiteID, Op: opname,
					Err: fmt.Errorf("site-side: %s: %w", r.resp.Err, context.DeadlineExceeded)}
				c.noteDegraded(err)
				return nil, 0, err, false
			case codeCancelled:
				return nil, 0, &CancelledError{SiteID: r.resp.SiteID, Op: opname,
					Err: fmt.Errorf("site-side: %s: %w", r.resp.Err, context.Canceled)}, false
			}
			return nil, 0, &SiteError{SiteID: r.resp.SiteID, Op: opname, Msg: r.resp.Err}, false
		}
		return r.resp, r.bytes, nil, false
	case <-ctx.Done():
		// Abandon the call but keep the generation: a late response is
		// discarded by id, other in-flight calls continue. Repeated deadline
		// misses open the circuit, which does retire the generation.
		mc.deregister(id)
		err := ctx.Err()
		c.noteDegraded(err)
		return nil, 0, ctxError(c.SiteID(), opname, err), false
	}
}
