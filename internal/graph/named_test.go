package graph

import (
	"strings"
	"testing"
)

func TestNamedBasics(t *testing.T) {
	n := NewNamed()
	a, err := n.Node("HoldCo")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := n.Node("HoldCo")
	if err != nil {
		t.Fatal(err)
	}
	if a != a2 {
		t.Fatal("re-registering changed the id")
	}
	if _, err := n.Node(""); err == nil {
		t.Fatal("empty identifier accepted")
	}
	if err := n.AddStake("HoldCo", "Target S.p.A.", 0.6); err != nil {
		t.Fatal(err)
	}
	if n.Len() != 2 {
		t.Fatalf("len = %d", n.Len())
	}
	id, ok := n.Lookup("Target S.p.A.")
	if !ok {
		t.Fatal("lookup failed")
	}
	if n.Name(id) != "Target S.p.A." || n.Name(a) != "HoldCo" {
		t.Fatal("names broken")
	}
	if n.Name(99) != "" || n.Name(None) != "" {
		t.Fatal("out-of-range Name should be empty")
	}
	if w, okE := n.G.Label(a, id); !okE || w != 0.6 {
		t.Fatalf("edge = %g %v", w, okE)
	}
	// Merging parallel stakes.
	if err := n.AddStake("HoldCo", "Target S.p.A.", 0.2); err != nil {
		t.Fatal(err)
	}
	if w, _ := n.G.Label(a, id); w != 0.8 {
		t.Fatalf("merged = %g", w)
	}
	// Errors propagate: self stake.
	if err := n.AddStake("HoldCo", "HoldCo", 0.1); err == nil {
		t.Fatal("self stake accepted")
	}
	if err := n.AddStake("", "X", 0.1); err == nil {
		t.Fatal("empty owner accepted")
	}
	if err := n.AddStake("X", "", 0.1); err == nil {
		t.Fatal("empty owned accepted")
	}
}

func TestNamedCSVRoundTrip(t *testing.T) {
	in := `# register extract
IT0001, FR0007, 0.6
FR0007, DE0042, 0.30
IT0001, DE0042, 0.25
Lonely Corp,,
`
	n, err := ReadNamedCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 4 {
		t.Fatalf("companies = %d", n.Len())
	}
	s, _ := n.Lookup("IT0001")
	d, _ := n.Lookup("DE0042")
	if !Equal(n.G, n.G, 0) || n.G.NumEdges() != 3 {
		t.Fatalf("graph = %v", n.G)
	}
	// Control through the named layer: 0.6 -> control of FR0007, joint
	// 0.30+0.25 -> control of DE0042.
	if sum := n.G.InSum(d); sum != 0.55 {
		t.Fatalf("in-sum = %g", sum)
	}
	var out strings.Builder
	if err := n.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadNamedCSV(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n2.Len() != 4 || n2.G.NumEdges() != 3 {
		t.Fatalf("round trip: %d companies %d edges", n2.Len(), n2.G.NumEdges())
	}
	s2, _ := n2.Lookup("IT0001")
	d2, _ := n2.Lookup("DE0042")
	w1, _ := n.G.Label(s, d)
	w2, _ := n2.G.Label(s2, d2)
	if w1 != w2 {
		t.Fatalf("labels differ: %g %g", w1, w2)
	}
	if _, ok := n2.Lookup("Lonely Corp"); !ok {
		t.Fatal("isolated company lost")
	}
}

func TestNamedCSVErrors(t *testing.T) {
	bad := []string{
		"a,b",          // too few fields
		"a,b,zap",      // bad fraction
		"a,b,1.5",      // out of range
		"a,a,0.5",      // self stake
		",b,0.5",       // empty owner
		"a,b,0.5,more", // too many fields
	}
	for _, s := range bad {
		if _, err := ReadNamedCSV(strings.NewReader(s)); err == nil {
			t.Errorf("ReadNamedCSV(%q) accepted", s)
		}
	}
}
