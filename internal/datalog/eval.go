// eval.go — the streaming semi-naive evaluator for compiled plans. Joins
// compose as nested iterations over index postings clipped to the delta
// window by binary search; no per-round candidate slices are materialized,
// and bindings live in flat slot buffers reused across the whole run.
//
// Evaluation state (planEval) is pooled per program: a plan-cache hit plus a
// pool hit makes a repeated query allocation-light — private relations,
// aggregate maps, and slot buffers are all cleared in place, not rebuilt.
package datalog

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// planEval is the mutable state of one evaluation of a planProgram.
type planEval struct {
	prog   *planProgram
	rels   []*relation // parallel to prog.rels; private ones owned here
	delta  [][2]int
	before []int

	slots   []Value
	wslots  []float64
	headBuf []Value

	aggSum  []map[string]float64
	aggSeen []map[string]bool

	ruleMatches []int // complete body bindings per rule
	ruleDerived []int // new tuples asserted per rule

	goal       []Value // fully-bound goal tuple for early stop, or nil
	stopped    bool
	derived    int
	iterations int
}

func newPlanEval(p *planProgram) *planEval {
	ev := &planEval{prog: p}
	ev.rels = make([]*relation, len(p.rels))
	for i, pr := range p.rels {
		if pr.base != nil {
			ev.rels[i] = pr.base
		} else {
			ev.rels[i] = newRelation(pr.name, pr.arity, pr.weighted)
		}
	}
	ev.delta = make([][2]int, len(p.rels))
	ev.before = make([]int, len(p.rels))
	ev.slots = make([]Value, p.maxSlots)
	ev.wslots = make([]float64, p.maxWeights)
	ev.headBuf = make([]Value, p.maxHead)
	ev.aggSum = make([]map[string]float64, len(p.rules))
	ev.aggSeen = make([]map[string]bool, len(p.rules))
	for i := range p.rules {
		ev.aggSum[i] = make(map[string]float64)
		ev.aggSeen[i] = make(map[string]bool)
	}
	ev.ruleMatches = make([]int, len(p.rules))
	ev.ruleDerived = make([]int, len(p.rules))
	return ev
}

// reset clears evaluation state in place. Base relations belong to the
// engine and are left alone; private (adorned/magic) relations, aggregate
// maps, and counters are emptied for reuse.
func (ev *planEval) reset() {
	for i, pr := range ev.prog.rels {
		if pr.base == nil {
			ev.rels[i].reset()
		}
	}
	for i := range ev.aggSum {
		clear(ev.aggSum[i])
		clear(ev.aggSeen[i])
	}
	for i := range ev.ruleMatches {
		ev.ruleMatches[i] = 0
		ev.ruleDerived[i] = 0
	}
	ev.goal = nil
	ev.stopped = false
	ev.derived = 0
	ev.iterations = 0
}

// take returns a pooled evaluator for the program, or a fresh one.
func (p *planProgram) take() *planEval {
	p.mu.Lock()
	if n := len(p.pool); n > 0 {
		ev := p.pool[n-1]
		p.pool = p.pool[:n-1]
		p.mu.Unlock()
		return ev
	}
	p.mu.Unlock()
	return newPlanEval(p)
}

// put resets the evaluator and returns it to the pool (bounded, so a burst
// of concurrent queries does not pin memory forever).
func (p *planProgram) put(ev *planEval) {
	ev.reset()
	p.mu.Lock()
	if len(p.pool) < planPoolCap {
		p.pool = append(p.pool, ev)
	}
	p.mu.Unlock()
}

// run evaluates the program to fixpoint (or to the early-stop goal) and
// returns the number of semi-naive rounds.
func (ev *planEval) run() int {
	for _, s := range ev.prog.seeds {
		ev.rels[s.relID].insert(s.tuple, 0)
	}
	for i, r := range ev.rels {
		ev.delta[i] = [2]int{0, len(r.list)}
	}
	for {
		ev.iterations++
		for i, r := range ev.rels {
			ev.before[i] = len(r.list)
		}
		for ri, rp := range ev.prog.rules {
			ev.evalRule(ri, rp)
			if ev.stopped {
				return ev.iterations
			}
		}
		changed := false
		for i, r := range ev.rels {
			ev.delta[i] = [2]int{ev.before[i], len(r.list)}
			if len(r.list) > ev.before[i] {
				changed = true
			}
		}
		if !changed {
			return ev.iterations
		}
	}
}

// evalRule runs every delta configuration of one rule: orders[d] leads with
// body atom d restricted to its delta window.
func (ev *planEval) evalRule(ri int, rp *rulePlan) {
	for _, order := range rp.orders {
		dr := ev.delta[order[0].relID]
		if dr[0] == dr[1] {
			continue
		}
		ev.step(ri, rp, order, 0, dr)
		if ev.stopped {
			return
		}
	}
}

// step extends the current slot bindings over order[i]; i==0 is the delta
// atom, restricted to [dr[0], dr[1]).
func (ev *planEval) step(ri int, rp *rulePlan, order []atomStep, i int, dr [2]int) {
	if i == len(order) {
		ev.fire(ri, rp)
		return
	}
	st := &order[i]
	rel := ev.rels[st.relID]
	lo, hi := 0, len(rel.list)
	if i == 0 {
		lo, hi = dr[0], dr[1]
	}
	if st.indexPos >= 0 {
		op := &st.ops[st.indexPos]
		v := op.val
		if op.kind == opCheck {
			v = ev.slots[op.slot]
		}
		for _, ti := range clipRange(rel.index[st.indexPos][v], lo, hi) {
			ev.tryTuple(ri, rp, order, i, ti, dr)
			if ev.stopped {
				return
			}
		}
		return
	}
	for ti := lo; ti < hi; ti++ {
		ev.tryTuple(ri, rp, order, i, ti, dr)
		if ev.stopped {
			return
		}
	}
}

// tryTuple matches one tuple against order[i]'s ops, binding slots on first
// occurrences. Stale slot values from backtracking are harmless: a slot is
// only ever read (opCheck, head, agg) at points that come strictly after its
// opBind in the same order, so every read sees the current iteration's value.
func (ev *planEval) tryTuple(ri int, rp *rulePlan, order []atomStep, i, ti int, dr [2]int) {
	st := &order[i]
	rel := ev.rels[st.relID]
	tuple := rel.list[ti]
	for pos := range st.ops {
		op := &st.ops[pos]
		switch op.kind {
		case opConst:
			if tuple[pos] != op.val {
				return
			}
		case opCheck:
			if tuple[pos] != ev.slots[op.slot] {
				return
			}
		default: // opBind
			ev.slots[op.slot] = tuple[pos]
		}
	}
	if st.weightSlot >= 0 {
		ev.wslots[st.weightSlot] = rel.weights[ti]
	}
	ev.step(ri, rp, order, i+1, dr)
}

// fire processes one complete body binding: plain rules assert the head,
// msum rules accumulate per-group state and assert on threshold crossing.
func (ev *planEval) fire(ri int, rp *rulePlan) {
	ev.ruleMatches[ri]++
	head := ev.headBuf[:len(rp.headOps)]
	for i := range rp.headOps {
		op := &rp.headOps[i]
		if op.kind == opConst {
			head[i] = op.val
		} else {
			head[i] = ev.slots[op.slot]
		}
	}
	rel := ev.rels[rp.headRelID]
	if rp.agg == nil {
		var w float64
		if rp.insertWeightSlot >= 0 {
			w = ev.wslots[rp.insertWeightSlot]
		}
		if rel.insert(head, w) {
			ev.noteDerived(ri, rp, head)
		}
		return
	}
	group := encode(head)
	key := group + "\x00" + encodeOne(ev.slots[rp.agg.contribSlot])
	if ev.aggSeen[ri][key] {
		return // msum counts each contributor once
	}
	ev.aggSeen[ri][key] = true
	ev.aggSum[ri][group] += ev.wslots[rp.agg.weightSlot]
	if ev.aggSum[ri][group] > rp.agg.threshold {
		if rel.insert(head, 0) {
			ev.noteDerived(ri, rp, head)
		}
	}
}

func (ev *planEval) noteDerived(ri int, rp *rulePlan, head []Value) {
	ev.ruleDerived[ri]++
	ev.derived++
	if rp.headRelID == ev.prog.goalRelID && ev.goal != nil && valuesEqual(head, ev.goal) {
		ev.stopped = true
	}
}

func encodeOne(v Value) string {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return string(buf[:])
}

func valuesEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// planFor returns the cached plan under key, building and caching it on a
// miss. The boolean reports a cache hit. Builds run under the lock: plans
// compile in microseconds and concurrent queries for the same adornment
// should share one program (and its evaluator pool).
func (e *Engine) planFor(key string, build func(p *planner) error) (*planProgram, bool, error) {
	full := fmt.Sprintf("%s|v%d", key, e.version)
	e.planMu.Lock()
	defer e.planMu.Unlock()
	if e.planCache == nil {
		e.planCache = make(map[string]*planProgram)
	}
	if prog, ok := e.planCache[full]; ok {
		return prog, true, nil
	}
	p := newPlanner(e)
	if err := build(p); err != nil {
		return nil, false, err
	}
	prog := p.finish()
	prog.key = full
	e.planCache[full] = prog
	return prog, false, nil
}

// RunPlanned evaluates all rules to fixpoint like Run, but through the
// compiled plan: slot bindings, static index selection, and streaming delta
// joins. It returns the number of rounds and the evaluation explain record.
func (e *Engine) RunPlanned() (int, *Explain, error) {
	prog, hit, err := e.planFor("run", func(p *planner) error {
		for _, r := range e.rules {
			if err := p.compileRule(r); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	ev := prog.take()
	iters := ev.run()
	x := buildExplain(prog, ev, hit)
	x.Goal = "fixpoint"
	prog.put(ev)
	return iters, x, nil
}

// QueryResult is the answer to a goal-directed query.
type QueryResult struct {
	// Derived reports whether any tuple matches the goal.
	Derived bool
	// Tuples are the matching goal tuples, sorted (deterministic).
	Tuples [][]Value
	// Explain describes the plan that ran and its per-rule counters.
	Explain *Explain
}

// Query answers pred(args...) goal-directedly. Constant arguments become the
// adornment's bound positions; the magic-sets transform restricts the
// fixpoint to tuples relevant to those constants, so a single-pair query
// touches only the reachable part of the data instead of running the global
// fixpoint. Plans are cached per (program version, predicate, adornment):
// repeated queries with different constants share one compiled plan and its
// evaluator pool.
//
// Query never mutates engine relations; it is safe to call from multiple
// goroutines as long as no AddFact/AddRule/Relation/Run runs concurrently.
func (e *Engine) Query(pred string, args ...Term) (QueryResult, error) {
	rel, ok := e.rels[pred]
	if !ok {
		return QueryResult{}, fmt.Errorf("datalog: unknown relation %s", pred)
	}
	if len(args) != rel.arity {
		return QueryResult{}, fmt.Errorf("datalog: %s has arity %d, got %d terms", pred, rel.arity, len(args))
	}
	adorn := adornmentOf(args)
	goal := goalText(pred, args)
	if !e.isIDB(pred) {
		// EDB fast path: no rule derives pred, answer straight from storage.
		res := QueryResult{Tuples: collectMatching(rel, args)}
		res.Derived = len(res.Tuples) > 0
		res.Explain = &Explain{Goal: goal, Adornment: adorn}
		return res, nil
	}
	prog, hit, err := e.planFor("q|"+pred+"|"+adorn, func(p *planner) error {
		return magicTransform(e, p, pred, adorn)
	})
	if err != nil {
		return QueryResult{}, err
	}
	ev := prog.take()
	if prog.seedRelID >= 0 {
		seed := make([]Value, 0, len(args))
		for _, a := range args {
			if a.Var == "" {
				seed = append(seed, a.Const)
			}
		}
		ev.rels[prog.seedRelID].insert(seed, 0)
	}
	fullyBound := !strings.Contains(adorn, "f")
	if fullyBound {
		g := make([]Value, len(args))
		for i, a := range args {
			g[i] = a.Const
		}
		ev.goal = g
	}
	ev.run()
	res := QueryResult{}
	goalRel := ev.rels[prog.goalRelID]
	if fullyBound {
		res.Derived = ev.stopped || goalRel.has(ev.goal)
		if res.Derived {
			g := make([]Value, len(args))
			copy(g, ev.goal)
			res.Tuples = [][]Value{g}
		}
	} else {
		res.Tuples = collectMatching(goalRel, args)
		res.Derived = len(res.Tuples) > 0
	}
	res.Explain = buildExplain(prog, ev, hit)
	res.Explain.Goal = goal
	prog.put(ev)
	return res, nil
}

// isIDB reports whether any rule derives pred.
func (e *Engine) isIDB(pred string) bool {
	for _, r := range e.rules {
		if r.Head.Pred == pred {
			return true
		}
	}
	return false
}

// adornmentOf maps constant arguments to 'b' and variables to 'f'.
func adornmentOf(args []Term) string {
	b := make([]byte, len(args))
	for i, a := range args {
		if a.Var == "" {
			b[i] = 'b'
		} else {
			b[i] = 'f'
		}
	}
	return string(b)
}

// collectMatching copies rel's tuples consistent with the goal terms:
// constants must match, repeated variables must agree. Results are sorted.
func collectMatching(rel *relation, args []Term) [][]Value {
	var out [][]Value
	for _, t := range rel.list {
		if !goalMatches(t, args) {
			continue
		}
		c := make([]Value, len(t))
		copy(c, t)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

func goalMatches(tuple []Value, args []Term) bool {
	for i, a := range args {
		if a.Var == "" {
			if tuple[i] != a.Const {
				return false
			}
			continue
		}
		for j := 0; j < i; j++ {
			if args[j].Var == a.Var && tuple[j] != tuple[i] {
				return false
			}
		}
	}
	return true
}
