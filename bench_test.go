package ccp_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"ccp"
	"ccp/internal/control"
	"ccp/internal/experiments"
	"ccp/internal/graph"
)

// benchCfg keeps the figure/table regeneration benches laptop-friendly; run
// cmd/ccpbench with -scale 1 (or more) for full sweeps.
var benchCfg = experiments.Config{
	Scale:      0.1,
	Seed:       42,
	Workers:    0,
	Repeats:    1,
	PathBudget: 500 * time.Millisecond,
}

// ---- micro-benchmarks of the core operations ----

func benchGraph(b *testing.B, n int, deg float64) *ccp.Graph {
	b.Helper()
	g := ccp.GenerateScaleFree(ccp.ScaleFreeConfig{Nodes: n, AvgOutDegree: deg, Seed: 7})
	b.ResetTimer()
	return g
}

func BenchmarkCBEQuery(b *testing.B) {
	g := benchGraph(b, 100_000, 2)
	q := control.Query{S: 0, T: graph.NodeID(g.Cap() - 1)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		control.CBE(g, q)
	}
}

func BenchmarkControlledSetHub(b *testing.B) {
	g := benchGraph(b, 100_000, 2)
	for i := 0; i < b.N; i++ {
		ccp.ControlledSet(g, 0)
	}
}

func BenchmarkParallelReduction(b *testing.B) {
	g := benchGraph(b, 50_000, 2)
	q := control.Query{S: 0, T: graph.NodeID(g.Cap() - 1)}
	x := graph.NewNodeSet(q.S, q.T)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clone := g.Clone()
		b.StartTimer()
		if _, err := control.ParallelReduction(context.Background(), clone, q, x, control.Options{DisableTermination: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// deepChainGraph builds the R3 cascade gadget: a root r owning 60% of c_1 and
// 30% of every b_j, with c_{j-1} owning the other 30% of b_j. Contracting c_j
// into r merges the two parallel 0.3 stakes in b_{j+1} into a 0.6 edge, so
// each round creates exactly one new directly-controlled node — a reduction
// with k rounds that each touch O(1) nodes, isolating per-round cost.
func deepChainGraph(b *testing.B, k int) *ccp.Graph {
	b.Helper()
	g := ccp.NewGraph(k + 2)
	must := func(err error) {
		if err != nil {
			b.Fatal(err)
		}
	}
	must(g.AddEdge(0, 1, 0.6))
	for j := 2; j <= k; j++ {
		must(g.AddEdge(0, ccp.NodeID(j), 0.3))
		must(g.AddEdge(ccp.NodeID(j-1), ccp.NodeID(j), 0.3))
	}
	must(g.AddEdge(ccp.NodeID(k), ccp.NodeID(k+1), 0.3))
	return g
}

// BenchmarkReductionRounds isolates the per-round cost of the reduction on a
// deep C3 cascade: k contraction rounds that each touch a handful of nodes.
func BenchmarkReductionRounds(b *testing.B) {
	const k = 3000
	g := deepChainGraph(b, k)
	q := control.Query{S: 0, T: graph.NodeID(k + 1)}
	x := graph.NewNodeSet(q.S, q.T)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clone := g.Clone()
		b.StartTimer()
		res, err := control.ParallelReduction(context.Background(), clone, q, x, control.Options{DisableTermination: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Phase2Rounds < k {
			b.Fatalf("cascade collapsed in %d rounds, want %d", res.Phase2Rounds, k)
		}
	}
}

func BenchmarkSequentialReduction(b *testing.B) {
	g := benchGraph(b, 10_000, 2)
	q := control.Query{S: 0, T: graph.NodeID(g.Cap() - 1)}
	x := graph.NewNodeSet(q.S, q.T)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clone := g.Clone()
		b.StartTimer()
		control.SequentialReduction(clone, q, x, control.FullTrust)
	}
}

func BenchmarkBinarySerialization(b *testing.B) {
	g := benchGraph(b, 50_000, 2)
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := g.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := ccp.ReadBinaryGraph(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkGenerateScaleFree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ccp.GenerateScaleFree(ccp.ScaleFreeConfig{Nodes: 50_000, AvgOutDegree: 2, Seed: int64(i)})
	}
}

func BenchmarkCBEFrozen(b *testing.B) {
	g := benchGraph(b, 100_000, 2)
	f := ccp.Freeze(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Controls(0, ccp.NodeID(g.Cap()-1))
	}
}

func BenchmarkUltimateControllers(b *testing.B) {
	g := benchGraph(b, 100_000, 2)
	for i := 0; i < b.N; i++ {
		ccp.UltimateControllers(g)
	}
}

func BenchmarkDatalogControl(b *testing.B) {
	g := benchGraph(b, 2_000, 2)
	for i := 0; i < b.N; i++ {
		if _, err := ccp.ControlsDeclarative(g, 0, ccp.NodeID(g.Cap()-1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExplain(b *testing.B) {
	g := benchGraph(b, 100_000, 2)
	for i := 0; i < b.N; i++ {
		ccp.Explain(g, 0, ccp.NodeID(g.Cap()-1))
	}
}

// ---- one bench per paper figure/table (Section VIII) ----
//
// Each runs the full (scaled-down) sweep of the corresponding experiment and
// reports the headline quantity as a custom metric. cmd/ccpbench prints the
// row-by-row tables.

func BenchmarkFig8aPartitionSize(b *testing.B) {
	var last []experiments.DistPoint
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig8a(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	p := last[len(last)-1]
	b.ReportMetric(float64(p.Total.Microseconds()), "µs/largest-point")
	b.ReportMetric(float64(p.CoordTime.Microseconds()), "µs/coord")
}

func BenchmarkFig8bNumPartitions(b *testing.B) {
	var last []experiments.DistPoint
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig8b(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	b.ReportMetric(float64(last[len(last)-1].Total.Microseconds()), "µs/10-partitions")
}

func BenchmarkFig8cInterconnection(b *testing.B) {
	var last []experiments.DistPoint
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig8c(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	lo, hi := last[0], last[len(last)-1]
	b.ReportMetric(float64(hi.Bytes)/float64(lo.Bytes), "traffic-growth-x")
}

func BenchmarkFig8dCores(b *testing.B) {
	var last []experiments.ParPoint
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig8d(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	speedup := float64(last[0].Elapsed) / float64(last[len(last)-1].Elapsed)
	b.ReportMetric(speedup, "speedup-2-to-20-cores")
}

func BenchmarkFig8eNodes(b *testing.B) {
	var last []experiments.ParPoint
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig8e(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	growth := float64(last[len(last)-1].Elapsed) / float64(last[0].Elapsed)
	b.ReportMetric(growth, "time-growth-2x-nodes")
}

func BenchmarkFig8fEdgesDensity(b *testing.B) {
	var last []experiments.ParPoint
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig8f(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	b.ReportMetric(float64(len(last)), "points")
}

func BenchmarkFig8gSpeedupDist(b *testing.B) {
	var last []experiments.SpeedupPoint
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig8g(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	best := 0.0
	for _, p := range last {
		if p.Speedup > best {
			best = p.Speedup
		}
	}
	b.ReportMetric(best, "best-dist-speedup-x")
}

func BenchmarkFig8hCaching(b *testing.B) {
	var last []experiments.SpeedupPoint
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig8h(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	best := 0.0
	for _, p := range last {
		if p.Speedup > best {
			best = p.Speedup
		}
	}
	b.ReportMetric(best, "best-cache-speedup-x")
}

func BenchmarkNetworkTraffic(b *testing.B) {
	var last []experiments.TrafficRow
	for i := 0; i < b.N; i++ {
		rows, err := experiments.NetworkTraffic(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	r := last[len(last)-1]
	b.ReportMetric(float64(r.Bytes), "bytes/largest-row")
	b.ReportMetric(float64(r.PartitionNodes)/float64(maxInt(r.PartialNodes, 1)), "partition-to-partial-x")
}

func BenchmarkRIAD(b *testing.B) {
	var last experiments.RIADResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RIAD(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Speedup, "speedup-vs-serial-x")
	b.ReportMetric(float64(last.Parallel.Microseconds()), "µs/parallel-run")
}

func BenchmarkSerialSpeedup(b *testing.B) {
	var last []experiments.SerialRow
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SerialSpeedup(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	best := 0.0
	for _, r := range last {
		if r.Speedup > best {
			best = r.Speedup
		}
	}
	b.ReportMetric(best, "best-speedup-x")
}

func BenchmarkFig9aPathEnumNodes(b *testing.B) {
	var last []experiments.Fig9Point
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig9a(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	dnf := 0
	for _, p := range last {
		if p.DNF {
			dnf++
		}
	}
	b.ReportMetric(float64(dnf), "dnf-points")
}

func BenchmarkFig9bPathEnumEdges(b *testing.B) {
	var last []experiments.Fig9Point
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig9b(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	dnf := 0
	for _, p := range last {
		if p.DNF {
			dnf++
		}
	}
	b.ReportMetric(float64(dnf), "dnf-points")
}

func BenchmarkThroughput(b *testing.B) {
	for _, conc := range []int{1, 4, 8} {
		name := "serial"
		if conc > 1 {
			name = fmt.Sprintf("conc%d", conc)
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchCfg
			cfg.Concurrency = conc
			b.ReportAllocs()
			var last experiments.ThroughputResult
			for i := 0; i < b.N; i++ {
				r, err := experiments.Throughput(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.QueriesPerMinute, "queries/min")
			b.ReportMetric(last.CacheHitRate*100, "cache-hit-%")
			b.ReportMetric(last.SnapshotHitRate*100, "snapshot-hit-%")
		})
	}
}

// ---- ablation benches (design choices in DESIGN.md) ----

func BenchmarkAblationPhases(b *testing.B) {
	benchAblation(b, "two-phase only")
}

func BenchmarkAblationTermination(b *testing.B) {
	benchAblation(b, "no early termination")
}

func BenchmarkAblationContraction(b *testing.B) {
	benchAblation(b, "naive contraction")
}

func BenchmarkAblationSolvers(b *testing.B) {
	benchAblation(b, "CBE worklist")
}

func benchAblation(b *testing.B, variant string) {
	b.Helper()
	var last []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	var base, v time.Duration
	for _, r := range last {
		switch r.Variant {
		case "parallel (default)":
			base = r.Elapsed
		case variant:
			v = r.Elapsed
		}
	}
	if base > 0 && v > 0 {
		b.ReportMetric(float64(v)/float64(base), "slowdown-vs-default-x")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
