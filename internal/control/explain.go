package control

import (
	"sort"

	"ccp/internal/graph"
)

// WitnessStep records how one company entered the controlled set of the
// source: the stakes held by already-controlled companies that jointly
// exceed half of its equity.
type WitnessStep struct {
	// Company is the company being brought under control.
	Company graph.NodeID
	// Stakes are the contributing shareholdings; every holder is the source
	// itself or a company of an earlier step.
	Stakes []graph.Edge
	// Total is the summed fraction, strictly above 0.5.
	Total float64
}

// Explain answers q_c(s, t) and, when true, returns a witness: a sequence
// of steps, each justified entirely by s and earlier steps, ending with t.
// Supervisors use such chains as the evidence trail behind a control
// decision. The returned steps are pruned to those t actually depends on.
func Explain(g *graph.Graph, q Query) ([]WitnessStep, bool) {
	if q.S == q.T {
		return nil, true
	}
	if !g.Alive(q.S) || !g.Alive(q.T) {
		return nil, false
	}

	// Forward closure, recording for every newly controlled company the
	// stakes that were accumulated for it.
	type pending struct {
		stakes []graph.Edge
		total  float64
	}
	acc := make(map[graph.NodeID]*pending)
	controlled := graph.NewNodeSet(q.S)
	order := []graph.NodeID{} // closure order of controlled companies
	steps := make(map[graph.NodeID]WitnessStep)
	queue := []graph.NodeID{q.S}
	for len(queue) > 0 && !controlled.Has(q.T) {
		y := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		g.EachOut(y, func(z graph.NodeID, w float64) {
			if controlled.Has(z) {
				return
			}
			p := acc[z]
			if p == nil {
				p = &pending{}
				acc[z] = p
			}
			p.stakes = append(p.stakes, graph.Edge{From: y, To: z, Weight: w})
			p.total += w
			if graph.ExceedsControl(p.total) {
				controlled.Add(z)
				order = append(order, z)
				steps[z] = WitnessStep{Company: z, Stakes: p.stakes, Total: p.total}
				queue = append(queue, z)
			}
		})
	}
	if !controlled.Has(q.T) {
		return nil, false
	}

	// Backward pruning: keep only the steps t transitively depends on.
	needed := graph.NewNodeSet(q.T)
	work := []graph.NodeID{q.T}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range steps[v].Stakes {
			if e.From == q.S || needed.Has(e.From) {
				continue
			}
			needed.Add(e.From)
			work = append(work, e.From)
		}
	}
	var out []WitnessStep
	for _, v := range order {
		if needed.Has(v) {
			out = append(out, steps[v])
		}
	}
	// Deterministic stake order inside each step.
	for i := range out {
		sort.Slice(out[i].Stakes, func(a, b int) bool {
			return out[i].Stakes[a].From < out[i].Stakes[b].From
		})
	}
	return out, true
}
