package ccp_test

import (
	"context"
	"testing"

	"ccp"
)

func TestWhatIfTakeover(t *testing.T) {
	g := holding(t) // 0 controls 3 via 1 and 2
	// Scenario: a rival (new stake from 4... node 4 doesn't exist in
	// holding(t)'s 4-node graph) — use existing nodes: 1 divests its stake
	// in 3, breaking 0's joint majority.
	changed, err := ccp.WhatIf(context.Background(), g,
		[]ccp.Mutation{{Owner: 1, Owned: 3, Remove: true}},
		[][2]ccp.NodeID{{0, 3}, {0, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0].S != 0 || changed[0].T != 3 || !changed[0].Before || changed[0].After {
		t.Fatalf("changed = %+v", changed)
	}
	// The original graph is untouched.
	if !ccp.Controls(g, 0, 3) {
		t.Fatal("WhatIf mutated its input")
	}
}

func TestWhatIfAddStake(t *testing.T) {
	g := ccp.NewGraph(3)
	if err := g.AddEdge(0, 1, 0.4); err != nil {
		t.Fatal(err)
	}
	changed, err := ccp.WhatIf(context.Background(), g,
		[]ccp.Mutation{{Owner: 0, Owned: 1, Weight: 0.2}}, // tops up to 0.6
		[][2]ccp.NodeID{{0, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || !changed[0].After {
		t.Fatalf("changed = %+v", changed)
	}
}

func TestWhatIfErrors(t *testing.T) {
	g := holding(t)
	if _, err := ccp.WhatIf(context.Background(), g, []ccp.Mutation{{Owner: 0, Owned: 3, Remove: true}}, nil); err == nil {
		t.Fatal("divesting a missing stake accepted")
	}
	if _, err := ccp.WhatIf(context.Background(), g, []ccp.Mutation{{Owner: 1, Owned: 1, Weight: 0.1}}, nil); err == nil {
		t.Fatal("self stake accepted")
	}
	// Over-allocation: node 3 already carries 55%; adding 0.6 from a new
	// shareholder overflows its equity.
	if _, err := ccp.WhatIf(context.Background(), g, []ccp.Mutation{{Owner: 0, Owned: 3, Weight: 0.6}}, nil); err == nil {
		t.Fatal("over-allocated equity accepted")
	}
}

func TestImpactOfDivestment(t *testing.T) {
	// 0 -0.9-> 1 -0.9-> 2 -0.9-> 3 : divesting (1,2) loses 2 and 3.
	g := ccp.NewGraph(4)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(ccp.NodeID(i), ccp.NodeID(i+1), 0.9); err != nil {
			t.Fatal(err)
		}
	}
	lost, err := ccp.ImpactOfDivestment(g, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 2 || lost[0] != 2 || lost[1] != 3 {
		t.Fatalf("lost = %v", lost)
	}
	if _, err := ccp.ImpactOfDivestment(g, 0, 2, 0); err == nil {
		t.Fatal("missing stake accepted")
	}
	// Divesting an irrelevant stake loses nothing.
	if err := g.AddEdge(3, 0, 0.05); err != nil {
		t.Fatal(err)
	}
	lost2, err := ccp.ImpactOfDivestment(g, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost2) != 0 {
		t.Fatalf("lost = %v", lost2)
	}
}
