package store

import (
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ccp/internal/obs"
	"ccp/internal/obs/flight"
	"ccp/internal/partition"
)

// Options tunes a Store.
type Options struct {
	// NoSync disables the per-commit fsync: appends are only as durable as
	// the OS page cache. Benchmarks and tests that model in-process crashes
	// (where the page cache survives) use it; production sites keep fsync.
	NoSync bool
	// CheckpointEvery is the background checkpoint interval once Start is
	// called. 0 means DefaultCheckpointEvery; negative disables the
	// time-based trigger.
	CheckpointEvery time.Duration
	// CheckpointBytes checkpoints early when that many WAL bytes accumulated
	// past the last checkpoint. 0 means DefaultCheckpointBytes; negative
	// disables the size-based trigger.
	CheckpointBytes int64
	// Logger receives recovery and checkpoint diagnostics; nil discards.
	Logger *slog.Logger
}

// Default background-checkpoint triggers: whichever of "the WAL tail grew
// past this" or "this much time passed with new records" fires first.
const (
	DefaultCheckpointEvery = 30 * time.Second
	DefaultCheckpointBytes = 8 << 20
)

// bgPoll is the background loop's trigger-check cadence; a variable so tests
// can tighten it.
var bgPoll = 250 * time.Millisecond

// Stats is a point-in-time snapshot of the store's state.
type Stats struct {
	Dir string `json:"dir"`
	// AppendedSeq is the last assigned sequence number; DurableSeq the last
	// one known durable (equal except mid-commit, or with NoSync).
	AppendedSeq uint64 `json:"appended_seq"`
	DurableSeq  uint64 `json:"durable_seq"`
	// CheckpointSeq is the sequence number covered by the newest checkpoint.
	CheckpointSeq   uint64 `json:"checkpoint_seq"`
	CheckpointBytes int64  `json:"checkpoint_bytes"`
	// CheckpointAge is the time since the newest checkpoint was written
	// (zero when the store has never checkpointed).
	CheckpointAge time.Duration `json:"checkpoint_age_ns"`
	Checkpoints   uint64        `json:"checkpoints"`
	// WALBytes spans every live segment; WALSegments counts them.
	WALBytes    int64  `json:"wal_bytes"`
	WALSegments int    `json:"wal_segments"`
	Appends     uint64 `json:"appends"`
	Fsyncs      uint64 `json:"fsyncs"`
	// RecoveredRecords is how many WAL records the boot replay applied.
	RecoveredRecords int `json:"recovered_records"`
}

// Store is the durable backing of one site partition: a WAL of updates plus
// compact checkpoints. Open recovers; Append logs; Start begins background
// checkpointing; Close drains and releases everything.
//
// Appends must be externally ordered with respect to the state they
// describe — the site calls Append under the same lock that mutates the
// partition, so WAL order is application order.
type Store struct {
	dir  string
	opts Options
	wal  *wal
	log  *slog.Logger
	fr   *flight.Recorder
	site int32

	// ckMu serializes checkpoint builds (background loop vs Close vs an
	// explicit Checkpoint call).
	ckMu sync.Mutex

	mu          sync.Mutex // guards the checkpoint bookkeeping below
	ckptSeq     uint64
	ckptAt      time.Time
	ckptBytes   int64
	ckptWALBase int64 // lifetime-append bytes when the last checkpoint ran

	ckpts       atomic.Uint64
	scrubCursor atomic.Uint64 // rotates which segments a bounded Scrub covers
	replayed    int
	base        *partition.Partition
	source      func() (uint64, *partition.Partition)
	closed      atomic.Bool
	bgStop      chan struct{}
	bgDone      chan struct{}
}

// Open opens (creating if needed) the store in dir and prepares recovery:
// the newest valid checkpoint is loaded (an invalid one falls back to its
// predecessor) and the WAL's torn tail, if any, is truncated. The caller
// gets the checkpoint image from Base, replays the tail with Replay, and
// then serves.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, log: obs.LoggerOr(opts.Logger), site: -1}

	cks, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	for _, ck := range cks {
		seq, p, size, err := loadCheckpoint(ck.path)
		if err != nil {
			// Delete it so the retention window (newest two) never counts a
			// checkpoint that cannot be recovered from.
			s.log.Warn("checkpoint invalid, falling back", "path", ck.path, "err", err)
			os.Remove(ck.path)
			continue
		}
		s.base, s.ckptSeq, s.ckptBytes = p, seq, size
		if fi, err := os.Stat(ck.path); err == nil {
			s.ckptAt = fi.ModTime()
		}
		break
	}

	w, err := openWAL(dir, s.ckptSeq, !opts.NoSync)
	if err != nil {
		return nil, err
	}
	// The oldest surviving WAL record must continue where the checkpoint
	// left off; a gap means the tail needed for recovery was lost.
	first := w.active.first
	if len(w.sealed) > 0 {
		first = w.sealed[0].first
	}
	if first > s.ckptSeq+1 {
		w.close()
		return nil, fmt.Errorf("store: wal starts at %d but checkpoint covers only %d", first, s.ckptSeq)
	}
	s.wal = w
	return s, nil
}

// Base returns the recovered checkpoint image and the sequence number it
// covers, or (nil, 0) on a fresh store — the caller then seeds the
// partition itself.
func (s *Store) Base() (*partition.Partition, uint64) {
	return s.base, s.ckptSeq
}

// Replay streams the WAL tail — every record past the checkpoint — to
// apply, in sequence order, and releases the checkpoint image. Call exactly
// once, after Open, before serving.
func (s *Store) Replay(apply func(Record) error) error {
	start := time.Now()
	n := 0
	err := s.wal.replay(s.ckptSeq, func(rec Record) error {
		n++
		return apply(rec)
	})
	s.replayed = n
	s.base = nil
	s.fr.Record(flight.RecoverReplay, s.site, 0, int64(n), int64(time.Since(start)))
	if err != nil {
		return err
	}
	if n > 0 || s.ckptSeq > 0 {
		s.log.Info("store recovered", "dir", s.dir,
			"checkpoint_seq", s.ckptSeq, "replayed", n, "elapsed", time.Since(start))
	}
	return nil
}

// Append durably logs rec and returns its sequence number — the site's new
// epoch. With fsync on it returns only after the record (and, thanks to
// group commit, every record before it) is on stable storage.
func (s *Store) Append(rec Record) (uint64, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	seq, err := s.wal.append(rec)
	if err != nil {
		return 0, err
	}
	s.fr.Record(flight.WALAppend, s.site, 0, int64(seq), frameLen)
	return seq, nil
}

// Mark burns one sequence number without recording a state change. Sites
// append it on forced invalidations so that epoch numbers (== sequence
// numbers) stay unique per observable state across restarts.
func (s *Store) Mark() (uint64, error) {
	return s.Append(Record{Kind: KindMark})
}

// DurableSeq returns the last sequence number known to be on stable
// storage.
func (s *Store) DurableSeq() uint64 { return s.wal.synced.Load() }

// AppendedSeq returns the last assigned sequence number.
func (s *Store) AppendedSeq() uint64 { return s.wal.appended.Load() }

// Start begins background checkpointing. source must return a consistent
// (sequence number, partition image) pair — the image reflecting exactly
// the records up to that sequence number; the site produces it under its
// update lock from a copy-on-write snapshot, so capturing one is O(nodes),
// not O(edges).
func (s *Store) Start(source func() (uint64, *partition.Partition)) {
	s.source = source
	every, bytes := s.opts.CheckpointEvery, s.opts.CheckpointBytes
	if every == 0 {
		every = DefaultCheckpointEvery
	}
	if bytes == 0 {
		bytes = DefaultCheckpointBytes
	}
	if every < 0 && bytes < 0 {
		return
	}
	s.bgStop, s.bgDone = make(chan struct{}), make(chan struct{})
	go s.run(every, bytes)
}

func (s *Store) run(every time.Duration, bytes int64) {
	defer close(s.bgDone)
	tick := time.NewTicker(bgPoll)
	defer tick.Stop()
	for {
		select {
		case <-s.bgStop:
			return
		case <-tick.C:
		}
		s.mu.Lock()
		due := false
		if s.wal.appended.Load() > s.ckptSeq {
			if every > 0 && time.Since(s.ckptAt) >= every {
				due = true
			}
			if bytes > 0 && s.walBytesSinceCkpt() >= bytes {
				due = true
			}
		}
		s.mu.Unlock()
		if !due {
			continue
		}
		if err := s.Checkpoint(); err != nil && err != ErrClosed {
			s.log.Warn("background checkpoint failed", "dir", s.dir, "err", err)
		}
	}
}

// walBytesSinceCkpt estimates the WAL growth past the last checkpoint.
// Caller holds s.mu.
func (s *Store) walBytesSinceCkpt() int64 {
	return int64(s.wal.appends.Load())*frameLen - s.ckptWALBase
}

// Checkpoint writes a checkpoint now: rotate the WAL (so the sealed
// segments are exactly the covered records), capture the source image, and
// persist it. Old checkpoints beyond the newest two, and WAL segments fully
// covered by the *previous* kept checkpoint, are deleted — one corrupt
// newest checkpoint therefore never loses data, recovery just replays the
// longer tail behind its predecessor.
func (s *Store) Checkpoint() error {
	if s.source == nil {
		return fmt.Errorf("store: no checkpoint source")
	}
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	return s.checkpointLocked()
}

// checkpointLocked does the actual checkpoint work. Caller holds ckMu.
func (s *Store) checkpointLocked() error {
	start := time.Now()
	if err := s.wal.rotate(); err != nil {
		return err
	}
	seq, img := s.source()
	size, err := writeCheckpoint(s.dir, seq, img)
	if err != nil {
		return err
	}
	s.ckpts.Add(1)

	s.mu.Lock()
	prev := s.ckptSeq
	s.ckptSeq, s.ckptAt, s.ckptBytes = seq, time.Now(), size
	s.ckptWALBase = int64(s.wal.appends.Load()) * frameLen
	s.mu.Unlock()

	// Retention: keep this checkpoint and its predecessor; drop WAL
	// segments the predecessor already covers.
	if cks, err := listCheckpoints(s.dir); err == nil {
		for i, ck := range cks {
			if i >= 2 {
				os.Remove(ck.path)
			}
		}
	}
	if err := s.wal.dropCoveredBy(prev); err != nil {
		s.log.Warn("wal segment cleanup failed", "err", err)
	}
	s.fr.Record(flight.CkptBuild, s.site, 0, int64(time.Since(start)), size)
	s.log.Debug("checkpoint written", "dir", s.dir, "seq", seq,
		"bytes", size, "elapsed", time.Since(start))
	return nil
}

// Close stops background checkpointing, writes a final checkpoint when new
// records landed since the last one (so the next boot replays nothing), and
// closes the WAL. Close is idempotent; Append after Close fails with
// ErrClosed.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.bgStop != nil {
		close(s.bgStop)
		<-s.bgDone
	}
	var err error
	if s.source != nil {
		// closed is already set, so only this final checkpoint can run;
		// ckMu also waits out a Checkpoint call that slipped in before.
		s.ckMu.Lock()
		s.mu.Lock()
		dirty := s.wal.appended.Load() > s.ckptSeq
		s.mu.Unlock()
		if dirty {
			err = s.checkpointLocked()
		}
		s.ckMu.Unlock()
	}
	if cerr := s.wal.close(); err == nil {
		err = cerr
	}
	return err
}

// Kill closes the store abruptly: no final checkpoint, the on-disk state is
// what recovery would find after a crash at this moment (with fsync on,
// exactly the acked records; with NoSync, the written-out prefix). Crash
// and restart tests use it; a clean shutdown wants Close.
func (s *Store) Kill() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.bgStop != nil {
		close(s.bgStop)
		<-s.bgDone
	}
	return s.wal.close()
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Dir:              s.dir,
		AppendedSeq:      s.wal.appended.Load(),
		DurableSeq:       s.wal.synced.Load(),
		CheckpointSeq:    s.ckptSeq,
		CheckpointBytes:  s.ckptBytes,
		Checkpoints:      s.ckpts.Load(),
		WALBytes:         s.wal.bytes.Load(),
		Appends:          s.wal.appends.Load(),
		Fsyncs:           s.wal.fsyncs.Load(),
		RecoveredRecords: s.replayed,
	}
	if !s.ckptAt.IsZero() {
		st.CheckpointAge = time.Since(s.ckptAt)
	}
	s.mu.Unlock()
	st.WALSegments = s.wal.segments()
	return st
}

// Observe registers the store's gauges and counters on o's registry,
// labeled with the site id, and routes flight events (wal.append,
// ckpt.build, recover.replay) to o's recorder. Call once, before serving.
func (s *Store) Observe(o *obs.Observer, site int) {
	s.site = int32(site)
	s.fr = o.Flight()
	reg := o.Registry()
	l := obs.Label{Key: "site", Value: strconv.Itoa(site)}
	reg.GaugeFunc("ccp_store_durable_seq",
		"Last WAL sequence number known durable.",
		func() float64 { return float64(s.DurableSeq()) }, l)
	reg.GaugeFunc("ccp_store_checkpoint_seq",
		"Sequence number covered by the newest checkpoint.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.ckptSeq) }, l)
	reg.GaugeFunc("ccp_store_wal_bytes",
		"Bytes across all live WAL segments.",
		func() float64 { return float64(s.wal.bytes.Load()) }, l)
	reg.GaugeFunc("ccp_store_checkpoint_age_seconds",
		"Seconds since the newest checkpoint was written.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.ckptAt.IsZero() {
				return 0
			}
			return time.Since(s.ckptAt).Seconds()
		}, l)
	reg.CounterFunc("ccp_store_appends_total",
		"WAL records appended.",
		func() float64 { return float64(s.wal.appends.Load()) }, l)
	reg.CounterFunc("ccp_store_fsyncs_total",
		"WAL fsync calls (group commit batches many appends per sync).",
		func() float64 { return float64(s.wal.fsyncs.Load()) }, l)
	reg.CounterFunc("ccp_store_checkpoints_total",
		"Checkpoints written.",
		func() float64 { return float64(s.ckpts.Load()) }, l)
	reg.CounterFunc("ccp_store_recovered_records_total",
		"WAL records replayed by the boot recovery.",
		func() float64 { return float64(s.replayed) }, l)
}
