package main

import (
	"os"
	"path/filepath"
	"testing"

	"ccp"
)

func TestSaveLoadGraphFormats(t *testing.T) {
	g := ccp.GenerateRandom(50, 100, 3)
	dir := t.TempDir()
	for _, name := range []string{"g.ccpg", "g.csv"} {
		path := filepath.Join(dir, name)
		if err := saveGraph(g, path); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		h, err := loadGraph(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if h.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: edges %d vs %d", name, h.NumEdges(), g.NumEdges())
		}
	}
	if _, err := loadGraph(filepath.Join(dir, "missing.ccpg")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCommandsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.ccpg")
	if err := cmdGen([]string{"-type", "scalefree", "-nodes", "500", "-degree", "2", "-out", gpath}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(gpath); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-in", gpath},
		{"-in", gpath, "-v"},
	} {
		if err := cmdStats(args); err != nil {
			t.Fatalf("stats %v: %v", args, err)
		}
	}
	for _, solver := range []string{"cbe", "reduce", "datalog", "pathenum"} {
		if err := cmdQuery([]string{"-in", gpath, "-s", "0", "-t", "7", "-solver", solver}); err != nil {
			t.Fatalf("query %s: %v", solver, err)
		}
	}
	if err := cmdOwned([]string{"-in", gpath, "-s", "0"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExplain([]string{"-in", gpath, "-s", "0", "-t", "7"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGroups([]string{"-in", gpath, "-top", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDatalog([]string{"-in", gpath, "-s", "0"}); err != nil {
		t.Fatal(err)
	}
	prefix := filepath.Join(dir, "part")
	if err := cmdSplit([]string{"-in", gpath, "-parts", "2", "-outprefix", prefix}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(prefix + string('0'+byte(i)) + ".ccpp"); err != nil {
			t.Fatal(err)
		}
	}
	// Error paths.
	if err := cmdGen([]string{"-type", "zap", "-out", gpath}); err == nil {
		t.Fatal("bad type accepted")
	}
	if err := cmdQuery([]string{"-in", gpath, "-s", "0", "-t", "1", "-solver", "zap"}); err == nil {
		t.Fatal("bad solver accepted")
	}
	if err := cmdStats([]string{}); err == nil {
		t.Fatal("missing -in accepted")
	}
}
