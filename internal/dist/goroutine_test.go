package dist

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"ccp/internal/control"
)

// waitForGoroutines retries until the process goroutine count is back at or
// below base (readers observe EOF asynchronously after a close), failing
// with a full stack dump if it never settles.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: %d -> %d\n%s", base, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownLeaksNoGoroutines drives a full remote round trip — two
// TCP site servers, remote clients, a coordinator query — then tears
// everything down and asserts the process goroutine count returns to its
// pre-test level: no leaked accept loops, connection readers, handler
// goroutines, or client read loops survive Close + Shutdown.
func TestShutdownLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()

	var servers []*Server
	var serveDone []chan error
	var clients []SiteClient
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(testSite(t), ServerConfig{})
		done := make(chan error, 1)
		go func() { done <- srv.Serve(l) }()
		servers = append(servers, srv)
		serveDone = append(serveDone, done)

		c, err := Dial(context.Background(), l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}

	coord := NewCoordinator(clients, Options{})
	if _, _, err := coord.Answer(context.Background(), control.Query{S: 0, T: 1}); err != nil {
		t.Fatal(err)
	}

	for _, c := range clients {
		c.(*RemoteClient).Close()
	}
	for i, srv := range servers {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			t.Fatalf("server %d shutdown: %v", i, err)
		}
		if err := <-serveDone[i]; err != nil {
			t.Fatalf("server %d serve: %v", i, err)
		}
	}
	waitForGoroutines(t, base)
}

// TestClientCloseUnblocksReader asserts that closing a client mid-
// connection (server still up) reaps its reader goroutine too — the leak
// path where only the client side goes away.
func TestClientCloseUnblocksReader(t *testing.T) {
	base := runtime.NumGoroutine()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(testSite(t), ServerConfig{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	c, err := Dial(context.Background(), l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Evaluate(context.Background(), control.Query{S: 0, T: 1}, EvalOptions{}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	waitForGoroutines(t, base)
}
