package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// storeRow is one site's durable-store state, assembled from the
// ccp_store_* and ccp_site_* series of a /varz snapshot.
type storeRow struct {
	addr, site                    string
	epoch, durable, ckptSeq       float64
	walBytes, ckptAge, pins       float64
	appends, fsyncs, ckpts, reply float64
}

// cmdStore prints the durable-store state of one or more running sites:
// epoch vs durable vs checkpointed sequence numbers, WAL backlog, and
// lifetime append/fsync/checkpoint counters, scraped from the ops /varz
// endpoints. Sites running without -data-dir report no store series and are
// listed as in-memory.
func cmdStore(args []string) error {
	fs := flag.NewFlagSet("store", flag.ExitOnError)
	opsList := fs.String("ops", "", "comma-separated ops addresses (host:port or URL) to poll")
	timeout := fs.Duration("timeout", 5*time.Second, "per-endpoint scrape timeout")
	asJSON := fs.Bool("json", false, "emit one JSON object per site instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := splitList(*opsList)
	if len(addrs) == 0 {
		return fmt.Errorf("store: -ops is required")
	}
	client := &http.Client{Timeout: *timeout}

	var rows []storeRow
	var memOnly []string
	for _, addr := range addrs {
		url := addr
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		resp, err := client.Get(strings.TrimSuffix(url, "/") + "/varz")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccpctl: store: %s unreachable: %v\n", addr, err)
			continue
		}
		var doc varzDoc
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccpctl: store: %s: bad /varz payload: %v\n", addr, err)
			continue
		}
		// Group the flat series by their label set; each label set with
		// store series is one durable site behind this endpoint.
		bySite := map[string]map[string]float64{}
		for _, v := range doc.Metrics {
			if v.Hist != nil {
				continue
			}
			if !strings.HasPrefix(v.Name, "ccp_store_") &&
				v.Name != "ccp_site_epoch" && v.Name != "ccp_site_snapshot_pins" {
				continue
			}
			m, ok := bySite[v.Labels]
			if !ok {
				m = map[string]float64{}
				bySite[v.Labels] = m
			}
			m[v.Name] = v.Value
		}
		found := false
		for labels, m := range bySite {
			if _, ok := m["ccp_store_durable_seq"]; !ok {
				continue // a site without a store still exports its epoch
			}
			found = true
			rows = append(rows, storeRow{
				addr:     addr,
				site:     labelValue(labels, "site"),
				epoch:    m["ccp_site_epoch"],
				durable:  m["ccp_store_durable_seq"],
				ckptSeq:  m["ccp_store_checkpoint_seq"],
				walBytes: m["ccp_store_wal_bytes"],
				ckptAge:  m["ccp_store_checkpoint_age_seconds"],
				pins:     m["ccp_site_snapshot_pins"],
				appends:  m["ccp_store_appends_total"],
				fsyncs:   m["ccp_store_fsyncs_total"],
				ckpts:    m["ccp_store_checkpoints_total"],
				reply:    m["ccp_store_recovered_records_total"],
			})
		}
		if !found {
			memOnly = append(memOnly, addr)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].site != rows[j].site {
			return rows[i].site < rows[j].site
		}
		return rows[i].addr < rows[j].addr
	})

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, r := range rows {
			enc.Encode(map[string]any{
				"addr": r.addr, "site": r.site,
				"epoch": r.epoch, "durable_seq": r.durable, "checkpoint_seq": r.ckptSeq,
				"wal_bytes": r.walBytes, "checkpoint_age_seconds": r.ckptAge,
				"snapshot_pins": r.pins, "appends": r.appends, "fsyncs": r.fsyncs,
				"checkpoints": r.ckpts, "recovered_records": r.reply,
			})
		}
		return nil
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SITE\tADDR\tEPOCH\tDURABLE\tCKPT\tWAL TAIL\tCKPT AGE\tAPPENDS\tFSYNCS\tCKPTS\tREPLAYED\tPINS")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.0f\t%s\t%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			r.site, r.addr, r.epoch, r.durable, r.ckptSeq,
			fmtBytes(r.walBytes), fmtAge(r.ckptAge),
			r.appends, r.fsyncs, r.ckpts, r.reply, r.pins)
	}
	for _, addr := range memOnly {
		fmt.Fprintf(w, "-\t%s\t(in-memory, no durable store)\n", addr)
	}
	return w.Flush()
}

// labelValue extracts one label's value from the canonical exposition form
// `{k="v",k2="v2"}`.
func labelValue(labels, key string) string {
	rest := strings.Trim(labels, "{}")
	for _, part := range strings.Split(rest, ",") {
		if k, v, ok := strings.Cut(part, "="); ok && k == key {
			return strings.Trim(v, `"`)
		}
	}
	return "?"
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

func fmtAge(sec float64) string {
	if sec <= 0 {
		return "-"
	}
	return time.Duration(sec * float64(time.Second)).Truncate(time.Second).String()
}
