package graph

// NodeSet is a set of node ids.
type NodeSet map[NodeID]struct{}

// NewNodeSet builds a set from ids.
func NewNodeSet(ids ...NodeID) NodeSet {
	s := make(NodeSet, len(ids))
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Add inserts id into the set.
func (s NodeSet) Add(id NodeID) { s[id] = struct{}{} }

// Has reports membership of id.
func (s NodeSet) Has(id NodeID) bool {
	_, ok := s[id]
	return ok
}

// AddAll inserts every element of t into s.
func (s NodeSet) AddAll(t NodeSet) {
	for id := range t {
		s.Add(id)
	}
}

// Induced returns the subgraph of g induced by keep: the nodes of keep that
// are live in g and every edge of g with both endpoints in keep. Node ids are
// preserved; the result has the same id capacity as g.
func (g *Graph) Induced(keep NodeSet) *Graph {
	sub := newShell(len(g.alive))
	for v := range keep {
		if g.Alive(v) {
			sub.alive[v] = true
			sub.nAlive++
		}
	}
	for v := range keep {
		if !g.Alive(v) {
			continue
		}
		for u, w := range g.out[v] {
			if sub.Alive(u) {
				sub.setEdge(v, u, w)
			}
		}
	}
	return sub
}

// Merge adds every live node and edge of other into g, extending the id
// space if needed. Edges already present in g keep their label: merging
// reduced partitions never double-counts an ownership relation, because
// every original edge lives in exactly one partition and reduction only
// moves labels between edges of the same partition.
func (g *Graph) Merge(other *Graph) {
	other.EachNode(func(v NodeID) { g.Revive(v) })
	other.EachNode(func(v NodeID) {
		for u, w := range other.out[v] {
			if _, exists := g.out[v][u]; exists {
				continue
			}
			g.setEdge(v, u, w)
		}
	})
}

// CompactCopy returns a copy of g where live nodes are renumbered densely
// 0..NumNodes-1, together with the mapping old id -> new id. It is used when
// shipping heavily reduced graphs whose id space would otherwise be sparse.
func (g *Graph) CompactCopy() (*Graph, map[NodeID]NodeID) {
	remap := make(map[NodeID]NodeID, g.nAlive)
	next := NodeID(0)
	g.EachNode(func(v NodeID) {
		remap[v] = next
		next++
	})
	c := New(int(next))
	g.EachNode(func(v NodeID) {
		for u, w := range g.out[v] {
			c.setEdge(remap[v], remap[u], w)
		}
	})
	return c, remap
}
