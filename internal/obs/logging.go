package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLogLevel maps the -log-level flag values (debug, info, warn, error)
// to slog levels.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds the process logger behind every binary's -log-level /
// -log-format flags: text (the default, human-oriented) or json (one object
// per line, for log shippers).
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// discardHandler drops every record. A hand-rolled handler (rather than
// slog.DiscardHandler) keeps the module on its declared go 1.22 floor.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Discard returns a logger that drops everything with Enabled reporting
// false, so guarded call sites skip attribute construction too.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

// LoggerOr returns l, or a discard logger when l is nil — the normalization
// every component applies once at construction so its hot paths call a
// non-nil logger unconditionally.
func LoggerOr(l *slog.Logger) *slog.Logger {
	if l == nil {
		return Discard()
	}
	return l
}

// TraceIDAttr renders a trace/flight id the way timelines print it, or
// omits clutter for the zero id.
func TraceIDAttr(id uint64) slog.Attr {
	if id == 0 {
		return slog.Attr{}
	}
	return slog.String("trace", fmt.Sprintf("%016x", id))
}
