package obs

import (
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo exports the conventional `ccp_build_info` gauge: a
// constant-1 series whose labels carry the build's identity — module
// version (or VCS revision when built from a checkout), Go toolchain, and
// the process's role in the cluster ("leader", "follower", "coordinator",
// "ctl", "bench"). Every binary registers it so `ccpctl doctor` and any
// scraper can tell what is actually running where. Nil-safe.
func RegisterBuildInfo(r *Registry, role string) {
	if r == nil {
		return
	}
	version := "devel"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			version = v
		} else {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" && len(s.Value) >= 12 {
					version = s.Value[:12]
				}
			}
		}
	}
	r.Gauge("ccp_build_info",
		"Constant 1; labels carry the build version, Go version, and process role.",
		Label{Key: "version", Value: version},
		Label{Key: "go_version", Value: runtime.Version()},
		Label{Key: "role", Value: role},
	).Set(1)
}
