package ccp

import (
	"context"
	"fmt"

	"ccp/internal/control"
)

// Mutation is one hypothetical change to the shareholding data for what-if
// analysis.
type Mutation struct {
	Owner, Owned NodeID
	// Weight is the stake to add (merged with any existing stake). Ignored
	// when Remove is set.
	Weight float64
	// Remove divests the stake entirely.
	Remove bool
}

// ChangedAnswer reports one watched control relation that a what-if scenario
// flips.
type ChangedAnswer struct {
	S, T          NodeID
	Before, After bool
}

// WhatIf applies a hypothetical list of mutations to a copy of g and reports
// which of the watched control questions change answer — the shock
// propagation and takeover-screening analysis the paper's introduction
// motivates ("prevention of potentially hostile takeovers, evaluation of
// risks, and shock propagation"). g itself is not modified. ctx bounds the
// whole scenario: watch lists can be large, and cancellation stops between
// watched queries.
func WhatIf(ctx context.Context, g *Graph, mutations []Mutation, watch [][2]NodeID) ([]ChangedAnswer, error) {
	clone := g.Clone()
	for _, m := range mutations {
		if m.Remove {
			if !clone.RemoveEdge(m.Owner, m.Owned) {
				return nil, fmt.Errorf("ccp: what-if divests a stake (%d,%d) that does not exist", m.Owner, m.Owned)
			}
			continue
		}
		if err := clone.MergeEdge(m.Owner, m.Owned, m.Weight); err != nil {
			return nil, fmt.Errorf("ccp: what-if: %w", err)
		}
	}
	if v, err := clone.CheckOwnership(); err != nil {
		return nil, fmt.Errorf("ccp: what-if scenario over-allocates company %d: %w", v, err)
	}
	var out []ChangedAnswer
	for _, w := range watch {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		before := control.CBE(g, Query{S: w[0], T: w[1]})
		after := control.CBE(clone, Query{S: w[0], T: w[1]})
		if before != after {
			out = append(out, ChangedAnswer{S: w[0], T: w[1], Before: before, After: after})
		}
	}
	return out, nil
}

// ImpactOfDivestment returns every company that s would stop controlling if
// the stake (owner, owned) were divested — the dependency of s's span of
// control on one shareholding.
func ImpactOfDivestment(g *Graph, s, owner, owned NodeID) ([]NodeID, error) {
	clone := g.Clone()
	if !clone.RemoveEdge(owner, owned) {
		return nil, fmt.Errorf("ccp: stake (%d,%d) does not exist", owner, owned)
	}
	before := control.ControlledSet(g, s)
	after := control.ControlledSet(clone, s)
	var lost []NodeID
	for v := range before {
		if !after.Has(v) {
			lost = append(lost, v)
		}
	}
	sortNodeIDs(lost)
	return lost, nil
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
