package main

import (
	"testing"

	"ccp/internal/experiments"
)

func TestNamesAreKnown(t *testing.T) {
	cfg := experiments.Config{Scale: 0.02, Seed: 1, Workers: 1, Repeats: 1,
		PathBudget: 1}
	// Every advertised experiment must dispatch (tiny scale keeps this
	// fast); unknown names must error.
	for _, name := range names() {
		if err := run(name, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := run("nope", cfg); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
