package control

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccp/internal/gen"
	"ccp/internal/graph"
)

func TestCoalitionControlledSet(t *testing.T) {
	// Neither 0 nor 1 alone controls 2 (30% each), but together they do.
	g := build(t, 4,
		graph.Edge{From: 0, To: 2, Weight: 0.3},
		graph.Edge{From: 1, To: 2, Weight: 0.3},
		graph.Edge{From: 2, To: 3, Weight: 0.9},
	)
	if CBE(g, Query{0, 2}) || CBE(g, Query{1, 2}) {
		t.Fatal("singletons must not control")
	}
	set := CoalitionControlledSet(g, []graph.NodeID{0, 1})
	if !set.Has(2) || !set.Has(3) {
		t.Fatalf("coalition set = %v", set)
	}
	if !CoalitionControls(g, []graph.NodeID{0, 1}, 3) {
		t.Fatal("coalition control missed")
	}
	if CoalitionControls(g, []graph.NodeID{0}, 2) {
		t.Fatal("singleton coalition invented control")
	}
	if !CoalitionControls(g, []graph.NodeID{0, 1}, 1) {
		t.Fatal("coalition trivially controls its members")
	}
}

func TestCoalitionDegenerate(t *testing.T) {
	g := build(t, 2, graph.Edge{From: 0, To: 1, Weight: 0.6})
	if s := CoalitionControlledSet(g, nil); len(s) != 0 {
		t.Fatalf("empty coalition controls %v", s)
	}
	if s := CoalitionControlledSet(g, []graph.NodeID{77}); len(s) != 0 {
		t.Fatalf("dead coalition controls %v", s)
	}
	// Duplicate seeds must not double-count stakes.
	g2 := build(t, 2, graph.Edge{From: 0, To: 1, Weight: 0.3})
	if CoalitionControls(g2, []graph.NodeID{0, 0}, 1) {
		t.Fatal("duplicated seed double-counted its stake")
	}
}

// TestQuickCoalitionSingletonMatchesControlledSet: a coalition of one is the
// plain controlled set.
func TestQuickCoalitionSingletonMatchesControlledSet(t *testing.T) {
	f := func(seed int64, nn, mm, ss uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nn%30)
		g := gen.Random(n, int(mm)%(4*n), rng.Int63())
		s := graph.NodeID(int(ss) % n)
		a := ControlledSet(g, s)
		b := CoalitionControlledSet(g, []graph.NodeID{s})
		if len(a) != len(b) {
			return false
		}
		for v := range a {
			if !b.Has(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCoalitionMonotone: adding seeds never shrinks the controlled set.
func TestQuickCoalitionMonotone(t *testing.T) {
	f := func(seed int64, nn, mm, s1, s2 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nn%30)
		g := gen.Random(n, int(mm)%(4*n), rng.Int63())
		a := graph.NodeID(int(s1) % n)
		b := graph.NodeID(int(s2) % n)
		small := CoalitionControlledSet(g, []graph.NodeID{a})
		big := CoalitionControlledSet(g, []graph.NodeID{a, b})
		for v := range small {
			if !big.Has(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOwnershipViaControl(t *testing.T) {
	g := diamond(t)
	// s controls both intermediaries; their stakes in t are 0.3 + 0.3.
	if got := OwnershipViaControl(g, 0, 3); got < 0.59 || got > 0.61 {
		t.Fatalf("commanded ownership = %g, want 0.6", got)
	}
	// The lone 40% shareholder commands only its direct stake.
	g2 := build(t, 3,
		graph.Edge{From: 0, To: 2, Weight: 0.4},
		graph.Edge{From: 1, To: 2, Weight: 0.6},
	)
	if got := OwnershipViaControl(g2, 0, 2); got != 0.4 {
		t.Fatalf("commanded = %g, want 0.4", got)
	}
	if OwnershipViaControl(g2, 0, 0) != 1 {
		t.Fatal("self ownership must be 1")
	}
	if OwnershipViaControl(g2, 9, 0) != 0 || OwnershipViaControl(g2, 0, 9) != 0 {
		t.Fatal("missing nodes must command 0")
	}
}

// TestQuickOwnershipConsistentWithControl: commanded ownership exceeds 1/2
// iff control holds.
func TestQuickOwnershipConsistentWithControl(t *testing.T) {
	f := func(seed int64, nn, mm, ss, tt uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nn%30)
		g := gen.Random(n, int(mm)%(4*n), rng.Int63())
		s := graph.NodeID(int(ss) % n)
		t := graph.NodeID(int(tt) % n)
		own := OwnershipViaControl(g, s, t)
		ctl := CBE(g, Query{s, t})
		if own < 0 || own > 1 {
			return false
		}
		return graph.ExceedsControl(own) == ctl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
