// Package graph implements the business ownership graph of the company
// control problem: a directed graph whose nodes are companies and whose
// edge labels are equity fractions in (0, 1].
//
// The representation is optimized for the reduction algorithms of the
// paper: node removal, edge transfer and label merging are all O(1) per
// edge, and nodes are identified by dense int32 ids so that parallel
// workers can own disjoint id shards.
package graph

import (
	"fmt"
	"maps"
	"math"
)

// NodeID identifies a company inside a Graph. Ids are dense: a graph with n
// nodes uses ids 0..n-1. Ids are stable across node removal; removed ids are
// never reused.
type NodeID int32

// None is the null node id.
const None NodeID = -1

// ControlThreshold is the ownership fraction strictly above which a company
// (or a controlled group) controls another company.
const ControlThreshold = 0.5

// sumSlack absorbs float64 rounding when validating that the incoming labels
// of a node sum to at most 1.
const sumSlack = 1e-9

// Graph is a mutable ownership graph. The zero value is an empty graph.
//
// Invariants maintained by the mutators:
//   - no self loops,
//   - no parallel edges (AddEdge rejects duplicates, MergeEdge sums labels),
//   - every label is in (0, 1].
//
// The incoming-label sum of a node may transiently exceed 1 during R3 label
// transfer; CheckOwnership verifies the input-data invariant sum <= 1.
//
// Every mutator additionally maintains per-node cached aggregates — the
// incoming-label sum, the number of incoming and outgoing labels exceeding
// the control threshold, and (when unique) the predecessor holding the
// controlling stake — so that ClassOf, InSum, DirectController and the
// termination checks are O(1) lookups instead of adjacency scans. The cached
// in-sum is updated incrementally; float drift stays orders of magnitude
// below ControlEps because every delta is exact to one rounding of the
// running sum.
//
// A Graph is not safe for concurrent mutation; the par package routes
// concurrent mutations so that each node's adjacency is touched by exactly
// one goroutine (aggregates of a node are only written by the worker owning
// that node's shard).
type Graph struct {
	out    []map[NodeID]float64
	in     []map[NodeID]float64
	alive  []bool
	nAlive int
	nEdges int

	// Cached aggregates, indexed by node id.
	inSum  []float64 // Σ incoming labels
	inBig  []int32   // #incoming labels exceeding the control threshold
	bigIn  []NodeID  // a predecessor with a controlling stake (None if inBig == 0)
	outBig []int32   // #outgoing labels exceeding the control threshold

	// Copy-on-write bookkeeping (see SnapshotClone). tags == nil means the
	// graph has never snapshotted and owns every map outright; otherwise
	// tags[v] == tag marks v's adjacency maps as exclusively owned, anything
	// else as possibly shared with a snapshot sibling.
	tags []uint64
	tag  uint64
}

// New returns a graph with n live nodes (ids 0..n-1) and no edges.
func New(n int) *Graph {
	g := newShell(n)
	for i := range g.alive {
		g.alive[i] = true
	}
	g.nAlive = n
	return g
}

// newShell allocates a graph with the given id capacity and every node dead.
// Callers revive nodes and insert edges through the regular mutators so the
// cached aggregates stay consistent.
func newShell(capacity int) *Graph {
	g := &Graph{
		out:    make([]map[NodeID]float64, capacity),
		in:     make([]map[NodeID]float64, capacity),
		alive:  make([]bool, capacity),
		inSum:  make([]float64, capacity),
		inBig:  make([]int32, capacity),
		bigIn:  make([]NodeID, capacity),
		outBig: make([]int32, capacity),
	}
	for i := range g.bigIn {
		g.bigIn[i] = None
	}
	return g
}

// accountIn folds a label change of edge (u, v) — old to w, either of which
// may be 0 for insertion/deletion — into v's cached in-aggregates.
func (g *Graph) accountIn(u, v NodeID, old, w float64) {
	g.inSum[v] += w - old
	ob, nb := ExceedsControl(old), ExceedsControl(w)
	switch {
	case nb && !ob:
		g.inBig[v]++
		g.bigIn[v] = u
	case ob && !nb:
		g.inBig[v]--
		if g.inBig[v] == 0 {
			g.bigIn[v] = None
		} else if g.bigIn[v] == u {
			g.refreshBigIn(v)
		}
	}
}

// refreshBigIn rescans v's in-adjacency for a controlling predecessor. It
// only runs when several controlling stakes coexist (in-sum transiently
// above 1) and the tracked one disappears.
func (g *Graph) refreshBigIn(v NodeID) {
	g.bigIn[v] = None
	for u, w := range g.in[v] {
		if ExceedsControl(w) && (g.bigIn[v] == None || u < g.bigIn[v]) {
			g.bigIn[v] = u
		}
	}
}

// accountOut folds a label change of an edge leaving u into u's cached
// out-aggregates.
func (g *Graph) accountOut(u NodeID, old, w float64) {
	ob, nb := ExceedsControl(old), ExceedsControl(w)
	if nb && !ob {
		g.outBig[u]++
	} else if ob && !nb {
		g.outBig[u]--
	}
}

// resetAggregates clears the cached aggregates of a removed node.
func (g *Graph) resetAggregates(v NodeID) {
	g.inSum[v] = 0
	g.inBig[v] = 0
	g.bigIn[v] = None
	g.outBig[v] = 0
}

// Cap returns the id-space size of the graph: all node ids are < Cap.
// Removed nodes still count toward Cap.
func (g *Graph) Cap() int { return len(g.alive) }

// NumNodes returns the number of live nodes.
func (g *Graph) NumNodes() int { return g.nAlive }

// NumEdges returns the number of live edges.
func (g *Graph) NumEdges() int { return g.nEdges }

// Alive reports whether v is a live node of the graph.
func (g *Graph) Alive(v NodeID) bool {
	return v >= 0 && int(v) < len(g.alive) && g.alive[v]
}

// AddNode appends one live node and returns its id.
func (g *Graph) AddNode() NodeID {
	id := NodeID(len(g.alive))
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.alive = append(g.alive, true)
	g.inSum = append(g.inSum, 0)
	g.inBig = append(g.inBig, 0)
	g.bigIn = append(g.bigIn, None)
	g.outBig = append(g.outBig, 0)
	if g.tags != nil {
		g.tags = append(g.tags, g.tag) // a brand-new node's maps are unshared
	}
	g.nAlive++
	return id
}

// AddNodes appends n live nodes and returns the id of the first.
func (g *Graph) AddNodes(n int) NodeID {
	first := NodeID(len(g.alive))
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	return first
}

// Revive marks id as live, extending the id space if necessary. It is used
// when assembling a graph from serialized node lists that preserve global
// ids.
func (g *Graph) Revive(v NodeID) {
	for int(v) >= len(g.alive) {
		g.out = append(g.out, nil)
		g.in = append(g.in, nil)
		g.alive = append(g.alive, false)
		g.inSum = append(g.inSum, 0)
		g.inBig = append(g.inBig, 0)
		g.bigIn = append(g.bigIn, None)
		g.outBig = append(g.outBig, 0)
		if g.tags != nil {
			g.tags = append(g.tags, g.tag)
		}
	}
	if !g.alive[v] {
		g.alive[v] = true
		g.nAlive++
	}
}

// AddEdge inserts the edge (u, v) with ownership fraction w.
// It returns an error if either endpoint is dead, the edge would be a self
// loop or a parallel edge, or w is outside (0, 1].
func (g *Graph) AddEdge(u, v NodeID, w float64) error {
	if err := g.checkEndpoints(u, v, w); err != nil {
		return err
	}
	if _, dup := g.out[u][v]; dup {
		return fmt.Errorf("graph: parallel edge (%d,%d)", u, v)
	}
	g.setEdge(u, v, w)
	return nil
}

// MergeEdge inserts the edge (u, v) with fraction w, summing labels if the
// edge already exists (the parallel-edge merge of reduction rule R3).
// The merged label is clamped to 1 to absorb rounding.
func (g *Graph) MergeEdge(u, v NodeID, w float64) error {
	if err := g.checkEndpoints(u, v, w); err != nil {
		return err
	}
	if old, ok := g.out[u][v]; ok {
		nw := old + w
		if nw > 1 {
			nw = 1
		}
		g.own(u)
		g.own(v)
		g.out[u][v] = nw
		g.in[v][u] = nw
		g.accountOut(u, old, nw)
		g.accountIn(u, v, old, nw)
		return nil
	}
	g.setEdge(u, v, w)
	return nil
}

func (g *Graph) checkEndpoints(u, v NodeID, w float64) error {
	if !g.Alive(u) || !g.Alive(v) {
		return fmt.Errorf("graph: edge (%d,%d) has a dead endpoint", u, v)
	}
	if u == v {
		return fmt.Errorf("graph: self loop on %d", u)
	}
	if w <= 0 || w > 1 || math.IsNaN(w) {
		return fmt.Errorf("graph: label %g of edge (%d,%d) outside (0,1]", w, u, v)
	}
	return nil
}

func (g *Graph) setEdge(u, v NodeID, w float64) {
	g.own(u)
	g.own(v)
	if g.out[u] == nil {
		g.out[u] = make(map[NodeID]float64)
	}
	if g.in[v] == nil {
		g.in[v] = make(map[NodeID]float64)
	}
	g.out[u][v] = w
	g.in[v][u] = w
	g.accountOut(u, 0, w)
	g.accountIn(u, v, 0, w)
	g.nEdges++
}

// Label returns the ownership fraction of edge (u, v) and whether the edge
// exists.
func (g *Graph) Label(u, v NodeID) (float64, bool) {
	if !g.Alive(u) {
		return 0, false
	}
	w, ok := g.out[u][v]
	return w, ok
}

// HasEdge reports whether the edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.Label(u, v)
	return ok
}

// RemoveEdge deletes edge (u, v) if present and reports whether it existed.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	if !g.Alive(u) || !g.Alive(v) {
		return false
	}
	w, ok := g.out[u][v]
	if !ok {
		return false
	}
	g.own(u)
	g.own(v)
	delete(g.out[u], v)
	delete(g.in[v], u)
	g.accountOut(u, w, 0)
	g.accountIn(u, v, w, 0)
	g.nEdges--
	return true
}

// RemoveNode deletes v and all its incident edges (the action of rules R1
// and R2). It reports whether v was live.
func (g *Graph) RemoveNode(v NodeID) bool {
	if !g.Alive(v) {
		return false
	}
	g.own(v)
	for u, w := range g.in[v] {
		g.own(u)
		delete(g.out[u], v)
		g.accountOut(u, w, 0)
		g.nEdges--
	}
	for u, w := range g.out[v] {
		g.own(u)
		delete(g.in[u], v)
		g.accountIn(v, u, w, 0)
		g.nEdges--
	}
	g.in[v] = nil
	g.out[v] = nil
	g.alive[v] = false
	g.nAlive--
	g.resetAggregates(v)
	return true
}

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v NodeID) int {
	if !g.Alive(v) {
		return 0
	}
	return len(g.out[v])
}

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v NodeID) int {
	if !g.Alive(v) {
		return 0
	}
	return len(g.in[v])
}

// InSum returns the sum of the labels of the incoming edges of v. It is an
// O(1) read of the cached aggregate.
func (g *Graph) InSum(v NodeID) float64 {
	if !g.Alive(v) {
		return 0
	}
	return g.inSum[v]
}

// HasControllingOut reports in O(1) whether v holds a controlling stake
// (label exceeding the control threshold) in any successor.
func (g *Graph) HasControllingOut(v NodeID) bool {
	return g.Alive(v) && g.outBig[v] > 0
}

// MaxInLabel returns the largest incoming label of v and the predecessor
// holding it, or (None, 0) if v has no incoming edges.
func (g *Graph) MaxInLabel(v NodeID) (NodeID, float64) {
	if !g.Alive(v) {
		return None, 0
	}
	best, bw := None, 0.0
	for u, w := range g.in[v] {
		if w > bw || (w == bw && (best == None || u < best)) {
			best, bw = u, w
		}
	}
	return best, bw
}

// DirectController returns the unique predecessor owning strictly more than
// half of v, or None. At most one such predecessor can exist because the
// incoming labels of a node sum to at most 1, which makes this an O(1)
// lookup of the cached controlling predecessor. If the invariant is broken
// and several controlling stakes coexist, it falls back to the MaxInLabel
// scan to preserve the historical tie-break (largest label, then lowest id).
func (g *Graph) DirectController(v NodeID) NodeID {
	if !g.Alive(v) {
		return None
	}
	switch g.inBig[v] {
	case 0:
		return None
	case 1:
		return g.bigIn[v]
	}
	u, w := g.MaxInLabel(v)
	if u != None && ExceedsControl(w) {
		return u
	}
	return None
}

// EachOut calls fn for every outgoing edge (v, u) with label w.
// fn must not mutate the graph; iteration order is unspecified.
func (g *Graph) EachOut(v NodeID, fn func(u NodeID, w float64)) {
	if !g.Alive(v) {
		return
	}
	for u, w := range g.out[v] {
		fn(u, w)
	}
}

// EachIn calls fn for every incoming edge (u, v) with label w.
// fn must not mutate the graph; iteration order is unspecified.
func (g *Graph) EachIn(v NodeID, fn func(u NodeID, w float64)) {
	if !g.Alive(v) {
		return
	}
	for u, w := range g.in[v] {
		fn(u, w)
	}
}

// EachNode calls fn for every live node.
func (g *Graph) EachNode(fn func(v NodeID)) {
	for i, ok := range g.alive {
		if ok {
			fn(NodeID(i))
		}
	}
}

// Nodes returns the ids of all live nodes in increasing order.
func (g *Graph) Nodes() []NodeID {
	ids := make([]NodeID, 0, g.nAlive)
	g.EachNode(func(v NodeID) { ids = append(ids, v) })
	return ids
}

// Successors returns the successor ids of v in unspecified order.
func (g *Graph) Successors(v NodeID) []NodeID {
	if !g.Alive(v) {
		return nil
	}
	succ := make([]NodeID, 0, len(g.out[v]))
	for u := range g.out[v] {
		succ = append(succ, u)
	}
	return succ
}

// Predecessors returns the predecessor ids of v in unspecified order.
func (g *Graph) Predecessors(v NodeID) []NodeID {
	if !g.Alive(v) {
		return nil
	}
	pred := make([]NodeID, 0, len(g.in[v]))
	for u := range g.in[v] {
		pred = append(pred, u)
	}
	return pred
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		out:    make([]map[NodeID]float64, len(g.out)),
		in:     make([]map[NodeID]float64, len(g.in)),
		alive:  make([]bool, len(g.alive)),
		nAlive: g.nAlive,
		nEdges: g.nEdges,
		inSum:  make([]float64, len(g.inSum)),
		inBig:  make([]int32, len(g.inBig)),
		bigIn:  make([]NodeID, len(g.bigIn)),
		outBig: make([]int32, len(g.outBig)),
	}
	copy(c.alive, g.alive)
	copy(c.inSum, g.inSum)
	copy(c.inBig, g.inBig)
	copy(c.bigIn, g.bigIn)
	copy(c.outBig, g.outBig)
	for i, m := range g.out {
		c.out[i] = cloneMap(m)
	}
	for i, m := range g.in {
		c.in[i] = cloneMap(m)
	}
	return c
}

func cloneMap(m map[NodeID]float64) map[NodeID]float64 {
	if len(m) == 0 {
		return nil
	}
	// maps.Clone copies the table wholesale in the runtime, far faster than
	// insert-by-insert; Clone dominates the per-query cost of distributed
	// live evaluations, which copy the whole partition before reducing it.
	return maps.Clone(m)
}

// CloneInto deep-copies g into dst, reusing dst's backing slices and
// per-node edge maps instead of allocating fresh ones. It returns the graph
// actually written: dst, or a fresh Clone when dst is nil or g itself. A
// pooled destination reaches steady state after one round trip — every map
// table it needs already exists — so repeated clones of same-shaped graphs
// stop allocating entirely.
func (g *Graph) CloneInto(dst *Graph) *Graph {
	if dst == nil || dst == g {
		return g.Clone()
	}
	dst.detach() // a recycled snapshot participant must not clear shared maps
	dst.sizeTo(len(g.alive))
	copy(dst.alive, g.alive)
	copy(dst.inSum, g.inSum)
	copy(dst.inBig, g.inBig)
	copy(dst.bigIn, g.bigIn)
	copy(dst.outBig, g.outBig)
	dst.nAlive = g.nAlive
	dst.nEdges = g.nEdges
	for i := range g.out {
		dst.out[i] = copyMapInto(dst.out[i], g.out[i])
		dst.in[i] = copyMapInto(dst.in[i], g.in[i])
	}
	return dst
}

// copyMapInto makes dst hold exactly src's entries, reusing dst's table when
// one exists. An empty source clears dst but keeps its table, so a reused
// graph's maps survive round trips through sparser clones.
func copyMapInto(dst, src map[NodeID]float64) map[NodeID]float64 {
	if len(src) == 0 {
		clear(dst)
		return dst
	}
	if dst == nil {
		return maps.Clone(src)
	}
	clear(dst)
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// Reset empties the graph — every node dead, no edges, aggregates zeroed —
// while keeping its id-space length and the allocated per-node edge maps, so
// a pooled scratch graph can be rebuilt without allocating.
func (g *Graph) Reset() {
	g.detach() // shared maps are dropped, not cleared in place
	for i := range g.alive {
		clear(g.out[i])
		clear(g.in[i])
	}
	clear(g.alive)
	clear(g.inSum)
	clear(g.inBig)
	clear(g.outBig)
	for i := range g.bigIn {
		g.bigIn[i] = None
	}
	g.nAlive, g.nEdges = 0, 0
}

// sizeTo resizes the parallel per-node slices to n entries, reusing backing
// arrays (and any edge maps they still hold) when capacity allows. Entries
// revealed by regrowth carry stale values; every caller overwrites the full
// index range afterwards (CloneInto by copying, DecodeBinaryInto via Reset).
func (g *Graph) sizeTo(n int) {
	g.out = resize(g.out, n)
	g.in = resize(g.in, n)
	g.alive = resize(g.alive, n)
	g.inSum = resize(g.inSum, n)
	g.inBig = resize(g.inBig, n)
	g.bigIn = resize(g.bigIn, n)
	g.outBig = resize(g.outBig, n)
	if g.tags != nil {
		g.tags = resize(g.tags, n)
	}
}

func resize[E any](s []E, n int) []E {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([]E, n)
	copy(ns, s)
	return ns
}

// CheckOwnership verifies the ownership-graph invariant: for every node the
// incoming labels sum to at most 1 (within rounding slack). It returns the
// first violating node, or None. The sum is recomputed from the adjacency
// rather than read from the cache, since this is a validation pass.
func (g *Graph) CheckOwnership() (NodeID, error) {
	for i := range g.alive {
		v := NodeID(i)
		if !g.alive[i] {
			continue
		}
		var s float64
		for _, w := range g.in[v] {
			s += w
		}
		if s > 1+sumSlack {
			return v, fmt.Errorf("graph: node %d is owned %g > 1", v, s)
		}
	}
	return None, nil
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes=%d edges=%d cap=%d}", g.nAlive, g.nEdges, len(g.alive))
}
