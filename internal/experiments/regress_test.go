package experiments

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

const throughputFixture = `{
  "benchmark": "ccpbench throughput",
  "rows": [
    {"concurrency": 1, "queries_per_minute": 1000, "p95_ms": 10, "snapshot_hit_rate": 0.9},
    {"concurrency": 4, "queries_per_minute": 3000, "p95_ms": 25, "snapshot_hit_rate": 0.9, "speedup_vs_serial": 3.0}
  ]
}`

func TestExtractSeriesThroughput(t *testing.T) {
	series, err := ExtractSeries([]byte(throughputFixture))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	qpm, ok := byName["throughput/qpm/c4"]
	if !ok || qpm.Value != 3000 || !qpm.HigherIsBetter || !qpm.Gated {
		t.Fatalf("qpm/c4 = %+v, want gated higher-is-better 3000", qpm)
	}
	p95, ok := byName["throughput/p95_ms/c1"]
	if !ok || p95.Value != 10 || p95.Gated || p95.HigherIsBetter {
		t.Fatalf("p95_ms/c1 = %+v, want ungated lower-is-better 10", p95)
	}
	spd, ok := byName["throughput/speedup/c4"]
	if !ok || spd.Value != 3.0 || !spd.HigherIsBetter || !spd.Gated {
		t.Fatalf("speedup/c4 = %+v, want gated higher-is-better 3.0", spd)
	}
	if _, ok := byName["throughput/speedup/c1"]; ok {
		t.Fatal("serial row must not emit a speedup series (it is the baseline)")
	}
	hit, ok := byName["throughput/snapshot_hit/c4"]
	if !ok || hit.Value != 0.9 || hit.Gated || !hit.HigherIsBetter {
		t.Fatalf("snapshot_hit/c4 = %+v, want ungated higher-is-better 0.9", hit)
	}
}

func TestExtractSeriesReduction(t *testing.T) {
	doc := `{"benchmarks": {"BenchmarkParallelReduction": {"after": {"ns_op": 14477817}}}}`
	series, err := ExtractSeries([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("got %d series, want 1", len(series))
	}
	s := series[0]
	if s.Name != "reduction/BenchmarkParallelReduction/ns_op" || s.Value != 14477817 ||
		s.HigherIsBetter || !s.Gated {
		t.Fatalf("series = %+v", s)
	}
}

func TestExtractSeriesRejectsUnknownShape(t *testing.T) {
	if _, err := ExtractSeries([]byte(`{"something": 1}`)); err == nil {
		t.Fatal("unknown shape should error")
	}
	if _, err := ExtractSeries([]byte(`not json`)); err == nil {
		t.Fatal("bad JSON should error")
	}
	if _, err := ExtractSeries([]byte(`{"rows": []}`)); err == nil {
		t.Fatal("empty rows should error")
	}
}

func TestExtractSeriesDatalog(t *testing.T) {
	doc := `{
	  "benchmark": "ccpbench datalog",
	  "engines": [
	    {"engine": "semi-naive", "queries": 12, "ns_per_query": 500000},
	    {"engine": "planned", "queries": 12, "ns_per_query": 50000},
	    {"engine": "cbe", "queries": 12, "ns_per_query": 2000}
	  ],
	  "speedup_planned_vs_seminaive": 10.0,
	  "goal": {"global_tuples": 4000, "goal_tuples": 80, "fraction": 0.02}
	}`
	series, err := ExtractSeries([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	spd, ok := byName["datalog/speedup_planned_vs_seminaive"]
	if !ok || spd.Value != 10.0 || !spd.HigherIsBetter || !spd.Gated {
		t.Fatalf("speedup = %+v, want gated higher-is-better 10.0", spd)
	}
	frac, ok := byName["datalog/goal_fraction"]
	if !ok || frac.Value != 0.02 || frac.HigherIsBetter || !frac.Gated {
		t.Fatalf("goal_fraction = %+v, want gated lower-is-better 0.02", frac)
	}
	ns, ok := byName["datalog/ns_per_query/planned"]
	if !ok || ns.Value != 50000 || ns.Gated {
		t.Fatalf("ns_per_query/planned = %+v, want ungated 50000", ns)
	}
	if len(byName) != 5 {
		t.Fatalf("got %d series %v, want 5", len(byName), byName)
	}
}

func TestExtractSeriesStore(t *testing.T) {
	doc := `{
	  "benchmark": "ccpbench store",
	  "wal": {"appends_per_sec_nosync": 3000000, "appends_per_sec_sync": 9000, "group_commit_batch": 2.5},
	  "recovery": [
	    {"tail": 2000, "ms": 2.0, "records_per_sec": 1000000},
	    {"tail": 50000, "ms": 40.0, "records_per_sec": 1250000}
	  ],
	  "snapshot": {"memory_qps": 1000, "durable_qps": 950, "durable_over_memory": 0.95}
	}`
	series, err := ExtractSeries([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	app, ok := byName["store/wal_appends_per_sec"]
	if !ok || app.Value != 3000000 || !app.HigherIsBetter || !app.Gated {
		t.Fatalf("wal_appends_per_sec = %+v, want gated higher-is-better 3000000", app)
	}
	sync, ok := byName["store/wal_appends_per_sec_sync"]
	if !ok || sync.Gated {
		t.Fatalf("wal_appends_per_sec_sync = %+v, want ungated (device-bound)", sync)
	}
	short, ok := byName["store/recovery_per_sec/t2000"]
	if !ok || short.Gated {
		t.Fatalf("recovery/t2000 = %+v, want ungated (too short to be stable)", short)
	}
	long, ok := byName["store/recovery_per_sec/t50000"]
	if !ok || long.Value != 1250000 || !long.HigherIsBetter || !long.Gated {
		t.Fatalf("recovery/t50000 = %+v, want gated higher-is-better 1250000", long)
	}
	ratio, ok := byName["store/durable_over_memory_qps"]
	if !ok || ratio.Value != 0.95 || !ratio.HigherIsBetter || !ratio.Gated {
		t.Fatalf("durable_over_memory_qps = %+v, want gated higher-is-better 0.95", ratio)
	}
}

func TestCompareGatesOnlyGatedSeries(t *testing.T) {
	baseline := []Series{
		{Name: "qpm", Value: 1000, HigherIsBetter: true, Gated: true},
		{Name: "p95", Value: 10},
	}
	// Within the 15% noise floor: no regression.
	current := []Series{
		{Name: "qpm", Value: 900, HigherIsBetter: true, Gated: true},
		{Name: "p95", Value: 12},
	}
	deltas, regressed := Compare(baseline, current, 0.15)
	if regressed {
		t.Fatalf("10%% drop regressed at 15%% threshold: %+v", deltas)
	}
	// Past the floor: the gated series trips the gate.
	current[0].Value = 700
	deltas, regressed = Compare(baseline, current, 0.15)
	if !regressed {
		t.Fatalf("30%% drop did not regress: %+v", deltas)
	}
	if !deltas[0].Regressed || deltas[0].DeltaPct >= 0 {
		t.Fatalf("qpm delta = %+v, want regressed negative", deltas[0])
	}
	// An ungated series collapsing does not fail the gate.
	current[0].Value = 1000
	current[1].Value = 1000
	if _, regressed := Compare(baseline, current, 0.15); regressed {
		t.Fatal("ungated p95 blow-up must not trip the gate")
	}
}

func TestCompareDirectionality(t *testing.T) {
	// Lower-is-better series: current going UP is the regression.
	baseline := []Series{{Name: "ns_op", Value: 100, Gated: true}}
	if _, regressed := Compare(baseline, []Series{{Name: "ns_op", Value: 130}}, 0.15); !regressed {
		t.Fatal("30% ns/op increase should regress")
	}
	if _, regressed := Compare(baseline, []Series{{Name: "ns_op", Value: 70}}, 0.15); regressed {
		t.Fatal("30% ns/op improvement must not regress")
	}
}

func TestCompareSkipsUnmatchedSeries(t *testing.T) {
	baseline := []Series{{Name: "gone", Value: 1, Gated: true}}
	current := []Series{{Name: "new", Value: 1, Gated: true}}
	deltas, regressed := Compare(baseline, current, 0.15)
	if len(deltas) != 0 || regressed {
		t.Fatalf("unmatched series produced deltas %+v (regressed=%v)", deltas, regressed)
	}
}

func TestCollectMeta(t *testing.T) {
	m := CollectMeta(7, 2.5)
	if m.Seed != 7 || m.Scale != 2.5 {
		t.Fatalf("meta = %+v", m)
	}
	if m.GoVersion != runtime.Version() || m.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Fatalf("toolchain fields wrong: %+v", m)
	}
	if m.Timestamp == "" || !strings.Contains(m.Platform, "/") {
		t.Fatalf("meta = %+v", m)
	}
}

func TestAppendHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	for i := 0; i < 2; i++ {
		e := HistoryEntry{
			Meta:      CollectMeta(int64(i), 1),
			Series:    []Series{{Name: "qpm", Value: float64(1000 + i)}},
			Regressed: i == 1,
		}
		if err := AppendHistory(path, e); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e HistoryEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if e.Meta.Seed != int64(lines) {
			t.Fatalf("line %d seed = %d", lines, e.Meta.Seed)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("history has %d lines, want 2", lines)
	}
}

// TestRepoBenchFilesExtract pins the gate to the real checked-in bench
// files: if their shape drifts, the gate silently gating nothing would be
// worse than a failing test.
func TestRepoBenchFilesExtract(t *testing.T) {
	for _, name := range []string{"BENCH_throughput.json", "BENCH_reduction.json", "BENCH_datalog.json", "BENCH_store.json"} {
		data, err := os.ReadFile(filepath.Join("..", "..", name))
		if err != nil {
			t.Skipf("%s not present: %v", name, err)
		}
		series, err := ExtractSeries(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gated := 0
		for _, s := range series {
			if s.Gated {
				gated++
			}
		}
		if gated == 0 {
			t.Fatalf("%s yields no gated series", name)
		}
	}
}
