// Package mcvp implements the Monotone Circuit Value Problem and its
// logspace reduction to the Company Control Problem — the construction
// behind Theorem 2 of the paper (CCP is P-complete). Besides documenting the
// hardness proof executably, the reduction doubles as a pathological
// workload generator: the produced ownership graphs are sparse (< 3 edges
// per node), acyclic, and exercise deep control chains.
package mcvp

import (
	"fmt"
	"math/rand"

	"ccp/internal/graph"
)

// Kind distinguishes the gate types of a monotone circuit.
type Kind uint8

const (
	// Input is a constant-input gate carrying a Boolean value.
	Input Kind = iota
	// And is a binary conjunction gate.
	And
	// Or is a binary disjunction gate.
	Or
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Input:
		return "input"
	case And:
		return "and"
	case Or:
		return "or"
	}
	return "?"
}

// Gate is one gate of a monotone circuit. And/Or gates read gates A and B,
// which must have smaller indices (the circuit is given in topological
// order). Input gates carry Value.
type Gate struct {
	Kind  Kind
	A, B  int
	Value bool
}

// Circuit is a monotone Boolean circuit in topological order. The value of
// the circuit is the value of gate Output.
type Circuit struct {
	Gates  []Gate
	Output int
}

// Validate checks topological order and gate arities.
func (c *Circuit) Validate() error {
	if len(c.Gates) == 0 {
		return fmt.Errorf("mcvp: empty circuit")
	}
	if c.Output < 0 || c.Output >= len(c.Gates) {
		return fmt.Errorf("mcvp: output gate %d out of range", c.Output)
	}
	for i, g := range c.Gates {
		switch g.Kind {
		case Input:
		case And, Or:
			if g.A < 0 || g.A >= i || g.B < 0 || g.B >= i {
				return fmt.Errorf("mcvp: gate %d reads (%d,%d), not topologically ordered", i, g.A, g.B)
			}
		default:
			return fmt.Errorf("mcvp: gate %d has unknown kind %d", i, g.Kind)
		}
	}
	return nil
}

// Eval computes the circuit value directly (the P-complete problem solved
// the obvious sequential way).
func (c *Circuit) Eval() (bool, error) {
	if err := c.Validate(); err != nil {
		return false, err
	}
	val := make([]bool, len(c.Gates))
	for i, g := range c.Gates {
		switch g.Kind {
		case Input:
			val[i] = g.Value
		case And:
			val[i] = val[g.A] && val[g.B]
		case Or:
			val[i] = val[g.A] || val[g.B]
		}
	}
	return val[c.Output], nil
}

// ToCCP performs the logspace reduction of Theorem 2 (Figure 2): it maps the
// circuit to an ownership graph G with a source company s and a target
// company t such that s controls t in G if and only if the circuit value is
// true.
//
// Gate i becomes company i; company len(Gates) is the extra vertex s; t is
// the output gate's company. Per the construction:
//
//   - input gate with value 1: edge (s, v) labeled 1;
//   - and-gate v with inputs a, b: edges (a, v) and (b, v) labeled 0.5
//     (s must control both to control v);
//   - or-gate v with inputs a, b: edge (s, v) labeled 0.4 plus edges (a, v),
//     (b, v) labeled 0.2 (s must control at least one input).
//
// Gates wired to the same input twice (a == b) get their edges merged by
// label summing, which preserves the and/or semantics.
func ToCCP(c *Circuit) (g *graph.Graph, s, t graph.NodeID, err error) {
	if err := c.Validate(); err != nil {
		return nil, graph.None, graph.None, err
	}
	g = graph.New(len(c.Gates) + 1)
	s = graph.NodeID(len(c.Gates))
	t = graph.NodeID(c.Output)
	for i, gate := range c.Gates {
		v := graph.NodeID(i)
		switch gate.Kind {
		case Input:
			if gate.Value {
				if err := g.MergeEdge(s, v, 1); err != nil {
					return nil, graph.None, graph.None, err
				}
			}
		case And:
			for _, in := range []int{gate.A, gate.B} {
				if err := g.MergeEdge(graph.NodeID(in), v, 0.5); err != nil {
					return nil, graph.None, graph.None, err
				}
			}
		case Or:
			if err := g.MergeEdge(s, v, 0.4); err != nil {
				return nil, graph.None, graph.None, err
			}
			for _, in := range []int{gate.A, gate.B} {
				if err := g.MergeEdge(graph.NodeID(in), v, 0.2); err != nil {
					return nil, graph.None, graph.None, err
				}
			}
		}
	}
	return g, s, t, nil
}

// Random generates a valid random monotone circuit with n gates: a prefix of
// input gates followed by random and/or gates reading earlier gates. The
// output is the last gate.
func Random(n int, rng *rand.Rand) *Circuit {
	if n < 1 {
		n = 1
	}
	inputs := 1 + n/4
	if inputs > n {
		inputs = n
	}
	c := &Circuit{Gates: make([]Gate, n), Output: n - 1}
	for i := 0; i < n; i++ {
		if i < inputs {
			c.Gates[i] = Gate{Kind: Input, Value: rng.Intn(2) == 1}
			continue
		}
		k := And
		if rng.Intn(2) == 1 {
			k = Or
		}
		c.Gates[i] = Gate{Kind: k, A: rng.Intn(i), B: rng.Intn(i)}
	}
	return c
}
