package mcvp

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"ccp/internal/control"
	"ccp/internal/graph"
)

func TestEvalBasics(t *testing.T) {
	// (1 AND 0) OR 1
	c := &Circuit{
		Gates: []Gate{
			{Kind: Input, Value: true},
			{Kind: Input, Value: false},
			{Kind: Input, Value: true},
			{Kind: And, A: 0, B: 1},
			{Kind: Or, A: 3, B: 2},
		},
		Output: 4,
	}
	v, err := c.Eval()
	if err != nil || !v {
		t.Fatalf("Eval = %v, %v", v, err)
	}
	c.Gates[2].Value = false
	if v, _ := c.Eval(); v {
		t.Fatal("circuit should now be false")
	}
}

func TestValidate(t *testing.T) {
	bad := []*Circuit{
		{},
		{Gates: []Gate{{Kind: Input}}, Output: 5},
		{Gates: []Gate{{Kind: And, A: 0, B: 0}}, Output: 0},                // reads itself
		{Gates: []Gate{{Kind: Input}, {Kind: And, A: 0, B: 1}}, Output: 1}, // forward ref
		{Gates: []Gate{{Kind: Kind(9)}}, Output: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad circuit %d accepted", i)
		}
	}
	good := &Circuit{Gates: []Gate{{Kind: Input, Value: true}}, Output: 0}
	if err := good.Validate(); err != nil {
		t.Errorf("good circuit rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if Input.String() != "input" || And.String() != "and" || Or.String() != "or" || Kind(7).String() != "?" {
		t.Fatal("Kind.String broken")
	}
}

func TestToCCPFigure2Shapes(t *testing.T) {
	// and(x=1, y=1)
	c := &Circuit{
		Gates: []Gate{
			{Kind: Input, Value: true},
			{Kind: Input, Value: true},
			{Kind: And, A: 0, B: 1},
		},
		Output: 2,
	}
	g, s, tt, err := ToCCP(c)
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := g.Label(s, 0); !ok || w != 1 {
		t.Fatalf("input-1 edge: %g %v", w, ok)
	}
	if w, ok := g.Label(0, 2); !ok || w != 0.5 {
		t.Fatalf("and edge: %g %v", w, ok)
	}
	if !control.CBE(g, control.Query{S: s, T: tt}) {
		t.Fatal("s should control the and gate")
	}
	// Setting one input to 0 removes its s-edge and breaks control.
	c.Gates[1].Value = false
	g2, s2, t2, err := ToCCP(c)
	if err != nil {
		t.Fatal(err)
	}
	if control.CBE(g2, control.Query{S: s2, T: t2}) {
		t.Fatal("and(1,0) must not be controlled")
	}
	// or(x=0, y=1): 0.4 from s plus 0.2 from y.
	c2 := &Circuit{
		Gates: []Gate{
			{Kind: Input, Value: false},
			{Kind: Input, Value: true},
			{Kind: Or, A: 0, B: 1},
		},
		Output: 2,
	}
	g3, s3, t3, err := ToCCP(c2)
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := g3.Label(s3, 2); !ok || w != 0.4 {
		t.Fatalf("or s-edge: %g %v", w, ok)
	}
	if !control.CBE(g3, control.Query{S: s3, T: t3}) {
		t.Fatal("or(0,1) must be controlled")
	}
}

func TestToCCPDuplicateInputGate(t *testing.T) {
	// and(a, a) == a, or(a, a) == a: merged parallel edges must preserve it.
	for _, kind := range []Kind{And, Or} {
		for _, val := range []bool{true, false} {
			c := &Circuit{
				Gates: []Gate{
					{Kind: Input, Value: val},
					{Kind: kind, A: 0, B: 0},
				},
				Output: 1,
			}
			want, err := c.Eval()
			if err != nil {
				t.Fatal(err)
			}
			g, s, tt, err := ToCCP(c)
			if err != nil {
				t.Fatal(err)
			}
			if got := control.CBE(g, control.Query{S: s, T: tt}); got != want {
				t.Fatalf("%v(a,a) with a=%v: CCP=%v want %v", kind, val, got, want)
			}
		}
	}
}

func TestToCCPSparsity(t *testing.T) {
	// Theorem 2: the reduction output has fewer than 3x more edges than
	// nodes and is acyclic.
	rng := rand.New(rand.NewSource(1))
	c := Random(500, rng)
	g, _, _, err := ToCCP(c)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() >= 3*g.NumNodes() {
		t.Fatalf("%d edges on %d nodes: not sparse", g.NumEdges(), g.NumNodes())
	}
	if v, err := g.CheckOwnership(); err != nil {
		t.Fatalf("ownership invariant at %d: %v", v, err)
	}
}

// TestQuickReductionCorrectness is the executable Theorem 2: for random
// monotone circuits, the circuit value equals the CCP answer on the reduced
// instance — under CBE and under the parallel reduction alike.
func TestQuickReductionCorrectness(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Random(2+int(nn%80), rng)
		want, err := c.Eval()
		if err != nil {
			return false
		}
		g, s, tt, err := ToCCP(c)
		if err != nil {
			return false
		}
		q := control.Query{S: s, T: tt}
		if control.CBE(g, q) != want {
			return false
		}
		res, rerr := control.ParallelReduction(context.Background(), g.Clone(), q, graph.NewNodeSet(s, tt),
			control.Options{Workers: 4, Trust: control.FullTrust})
		return rerr == nil && res.Ans != control.Unknown && res.Ans.Bool() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
