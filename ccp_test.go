package ccp_test

import (
	"context"
	"math/rand"
	"net"
	"testing"

	"ccp"
	"ccp/internal/dist"
)

// holding builds the quickstart graph: 0 controls 1 directly, 1 and 2
// jointly give 0 control of 3.
func holding(t *testing.T) *ccp.Graph {
	t.Helper()
	g := ccp.NewGraph(4)
	for _, e := range []ccp.Edge{
		{From: 0, To: 1, Weight: 0.6},
		{From: 0, To: 2, Weight: 0.55},
		{From: 1, To: 3, Weight: 0.30},
		{From: 2, To: 3, Weight: 0.25},
	} {
		if err := g.AddEdge(e.From, e.To, e.Weight); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestControls(t *testing.T) {
	g := holding(t)
	if !ccp.Controls(g, 0, 1) {
		t.Fatal("direct control missed")
	}
	if !ccp.Controls(g, 0, 3) {
		t.Fatal("indirect joint control missed")
	}
	if ccp.Controls(g, 1, 3) {
		t.Fatal("30% is not control")
	}
}

func TestControlledSet(t *testing.T) {
	g := holding(t)
	set := ccp.ControlledSet(g, 0)
	if len(set) != 4 {
		t.Fatalf("set = %v", set)
	}
}

func TestReduceDecides(t *testing.T) {
	g := holding(t)
	res, err := ccp.Reduce(context.Background(), g, 0, 3, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || !res.Controls {
		t.Fatalf("res = %+v", res)
	}
	// The original is untouched.
	if g.NumNodes() != 4 {
		t.Fatal("Reduce mutated its input")
	}
	// With boundary nodes kept, the reduction may stay undecided but must
	// keep the exclusion set.
	res2, err := ccp.Reduce(context.Background(), g, 0, 3, ccp.NewNodeSet(1, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []ccp.NodeID{0, 1, 2, 3} {
		if !res2.Reduced.Alive(v) {
			t.Fatalf("excluded node %d removed", v)
		}
	}
}

func TestDeclarativeAndPathEnumerationAgree(t *testing.T) {
	g := ccp.GenerateRandom(16, 40, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		s := ccp.NodeID(rng.Intn(16))
		tt := ccp.NodeID(rng.Intn(16))
		want := ccp.Controls(g, s, tt)
		decl, err := ccp.ControlsDeclarative(g, s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if decl != want {
			t.Fatalf("declarative(%d,%d) = %v, want %v", s, tt, decl, want)
		}
		pe, truncated := ccp.ControlsByPathEnumeration(g, s, tt, 0)
		if truncated || pe != want {
			t.Fatalf("pathenum(%d,%d) = %v (trunc %v), want %v", s, tt, pe, truncated, want)
		}
	}
}

func TestLocalClusterMatchesCentralized(t *testing.T) {
	eu := ccp.GenerateEU(ccp.EUConfig{Countries: 3, NodesPerCountry: 1200, InterconnectRate: 0.01, Seed: 11})
	cl, err := ccp.NewClusterFromAssignment(eu.G, eu.Country, eu.Countries, ccp.ClusterOptions{
		UseCache:    true,
		SiteWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Sites() != 3 {
		t.Fatalf("sites = %d", cl.Sites())
	}
	if err := cl.Precompute(context.Background()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 15; i++ {
		s := ccp.NodeID(rng.Intn(eu.G.Cap()))
		tt := ccp.NodeID(rng.Intn(eu.G.Cap()))
		want := ccp.Controls(eu.G, s, tt)
		got, _, err := cl.Controls(context.Background(), s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("cluster(%d,%d) = %v, want %v", s, tt, got, want)
		}
	}
	if err := cl.Invalidate(0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Invalidate(99); err == nil {
		t.Fatal("bad site id accepted")
	}
}

func TestRemoteClusterOverTCP(t *testing.T) {
	g := ccp.GenerateScaleFree(ccp.ScaleFreeConfig{Nodes: 2000, AvgOutDegree: 2, Seed: 21})
	pi, err := ccp.PartitionContiguous(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 2)
	for i, p := range pi.Parts {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func(p *ccp.Partition) { _ = ccp.ServeSite(context.Background(), l, p, 2) }(p)
		addrs[i] = l.Addr().String()
	}
	cl, err := ccp.ConnectCluster(context.Background(), addrs, ccp.ClusterOptions{SiteWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Sites() != 2 {
		t.Fatalf("sites = %d", cl.Sites())
	}
	if err := cl.Invalidate(0); err == nil {
		t.Fatal("Invalidate must be rejected on remote clusters")
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		s := ccp.NodeID(rng.Intn(2000))
		tt := ccp.NodeID(rng.Intn(2000))
		want := ccp.Controls(g, s, tt)
		got, _, err := cl.Controls(context.Background(), s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("remote cluster(%d,%d) = %v, want %v", s, tt, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	g := ccp.GenerateItalian(ccp.ItalianConfig{Nodes: 20_000, Seed: 5})
	s := ccp.Summarize(g)
	if s.Nodes != 20_000 || s.Edges == 0 || s.LargestWCC == 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestGenerateRIAD(t *testing.T) {
	g := ccp.GenerateRIAD(ccp.RIADConfig{Nodes: 5000, Seed: 1})
	if g.NumNodes() != 5000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if _, err := g.CheckOwnership(); err != nil {
		t.Fatal(err)
	}
}

// Ensure the dist package's EvalOptions remain reachable through the facade
// behaviorally: a cluster with ForcePartial unset still answers correctly
// when sites decide locally.
func TestClusterLocalDecision(t *testing.T) {
	g := ccp.NewGraph(4)
	if err := g.AddEdge(0, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3, 0.9); err != nil {
		t.Fatal(err)
	}
	cl, err := ccp.NewLocalCluster(g, 2, ccp.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, m, err := cl.Controls(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got || m.DecidedBySite != 0 {
		t.Fatalf("got %v, metrics %+v", got, m)
	}
	_ = dist.EvalOptions{} // the type is part of the internal contract
}
