package datalog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccp/internal/gen"
	"ccp/internal/graph"
)

func TestLoadControlProgramText(t *testing.T) {
	e := NewEngine()
	src := ProgramText(graph.ControlThreshold+graph.ControlEps) + `
own(0, 1) @ 0.6.
own(0, 2) @ 0.6.
own(1, 3) @ 0.3.
own(2, 3) @ 0.3.
source(0).
`
	if err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	e.Run()
	for _, want := range [][2]Value{{0, 0}, {0, 1}, {0, 2}, {0, 3}} {
		if !e.Has("control", want[0], want[1]) {
			t.Fatalf("control%v not derived", want)
		}
	}
	if e.Count("control") != 4 {
		t.Fatalf("control count = %d", e.Count("control"))
	}
}

func TestLoadMatchesStructAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		g := gen.Random(n, rng.Intn(3*n), rng.Int63())
		s := graph.NodeID(rng.Intn(n))

		// Struct-built engine.
		want, err := Controls(g, s, graph.NodeID((int(s)+1)%n))
		if err != nil {
			t.Fatal(err)
		}

		// Text-built engine over the same data.
		e := NewEngine()
		src := ProgramText(graph.ControlThreshold + graph.ControlEps)
		if err := e.Load(src); err != nil {
			t.Fatal(err)
		}
		var loadErr error
		g.EachNode(func(v graph.NodeID) {
			g.EachOut(v, func(u graph.NodeID, w float64) {
				if err := e.AddFact("own", w, Value(v), Value(u)); err != nil && loadErr == nil {
					loadErr = err
				}
			})
		})
		if loadErr != nil {
			t.Fatal(loadErr)
		}
		if err := e.AddFact("source", 0, Value(s)); err != nil {
			t.Fatal(err)
		}
		e.Run()
		got := e.Has("control", Value(s), Value((int64(s)+1)%int64(n)))
		if got != want {
			t.Fatalf("trial %d: text program %v, struct program %v", trial, got, want)
		}
	}
}

func TestLoadFactsAndComments(t *testing.T) {
	e := NewEngine()
	src := `
% transitive closure
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
edge(1, 2).   % a chain
edge(2, 3).
`
	if err := e.Load(src); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !e.Has("path", 1, 3) {
		t.Fatal("closure via text program failed")
	}
}

func TestLoadNegativeConstants(t *testing.T) {
	e := NewEngine()
	if err := e.Load(`f(-3). g(x) :- f(x).`); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !e.Has("g", -3) {
		t.Fatal("negative constant lost")
	}
}

func TestLoadSyntaxErrors(t *testing.T) {
	bad := []string{
		`p(x`,                           // unterminated atom
		`p(x) :-`,                       // empty body
		`p(x) :- q(x)`,                  // missing '.'
		`p(x,y) :- q(x). p(x) :- q(x).`, // arity conflict
		`p(1.5).`,                       // non-integer constant
		`p(x) :- q(x), msum(w, <y>) > 0.5, msum(w, <y>) > 0.5.`, // two aggregates
		`p(x) q(x).`,               // missing operator
		`p(x) :- msum(w y) > 0.5.`, // malformed msum
		`p(x) :- q(x) @ .`,         // missing weight var
		`?(x).`,                    // bad predicate
	}
	for i, src := range bad {
		e := NewEngine()
		if err := e.Load(src); err == nil {
			t.Errorf("bad program %d accepted: %q", i, src)
		}
	}
}

func TestLoadVariableInFactRejected(t *testing.T) {
	e := NewEngine()
	if err := e.Load(`p(x).`); err == nil {
		t.Fatal("fact with variable accepted")
	}
}

func TestLoadIntoPredeclaredEngine(t *testing.T) {
	e := NewEngine()
	if err := e.Relation("edge", 2, false); err != nil {
		t.Fatal(err)
	}
	if err := e.AddFact("edge", 0, 5, 6); err != nil {
		t.Fatal(err)
	}
	if err := e.Load(`path(x, y) :- edge(x, y).`); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !e.Has("path", 5, 6) {
		t.Fatal("pre-declared relation not joined")
	}
	// Conflicting re-declaration is rejected.
	if err := e.Load(`edge(1).`); err == nil {
		t.Fatal("arity conflict with declared relation accepted")
	}
}

// TestQuickLoadNeverPanics feeds the parser random byte soup; it must
// return errors, never panic.
func TestQuickLoadNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		e := NewEngine()
		_ = e.Load(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Structured fragments that once looked plausible to mis-parse.
	for _, src := range []string{
		"p(", ")", ":-", "msum", "msum(", "p(x)@", "p(x)@1e9.",
		"p(x):-msum(w,<y>)>", "p(x):-q(y),", "....", "p()", "@",
		"p(x) :- q(x) @ w, msum(w, <x>) > -0.5.",
	} {
		e := NewEngine()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Load(%q) panicked: %v", src, r)
				}
			}()
			_ = e.Load(src)
		}()
	}
}
