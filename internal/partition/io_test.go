package partition

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"ccp/internal/gen"
	"ccp/internal/graph"
)

func TestPartitionBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(60)
		g := gen.Random(n, rng.Intn(4*n), rng.Int63())
		k := 1 + rng.Intn(4)
		assign := make([]int, g.Cap())
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		pi, err := Split(g, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pi.Parts {
			var buf bytes.Buffer
			if err := p.WriteBinary(&buf); err != nil {
				t.Fatal(err)
			}
			q, err := ReadPartition(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if q.ID != p.ID || q.CrossOut != p.CrossOut {
				t.Fatalf("identity lost: %+v vs %+v", q.ID, p.ID)
			}
			if !graph.Equal(p.Local, q.Local, 0) {
				t.Fatal("local graph changed")
			}
			for name, pair := range map[string][2]graph.NodeSet{
				"members": {p.Members, q.Members},
				"virtual": {p.Virtual, q.Virtual},
				"innodes": {p.InNodes, q.InNodes},
			} {
				a, b := pair[0], pair[1]
				if len(a) != len(b) {
					t.Fatalf("%s: %v vs %v", name, a, b)
				}
				for v := range a {
					if !b.Has(v) {
						t.Fatalf("%s: missing %d", name, v)
					}
				}
			}
			for v, c := range p.CrossIn {
				if q.CrossIn[v] != c {
					t.Fatalf("cross-in refcount of %d: %d vs %d", v, q.CrossIn[v], c)
				}
			}
		}
	}
}

func TestReadPartitionRejectsGarbage(t *testing.T) {
	if _, err := ReadPartition(strings.NewReader("nonsense")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadPartition(strings.NewReader("")); err == nil {
		t.Fatal("empty accepted")
	}
	// Truncated after valid magic.
	var buf bytes.Buffer
	g := gen.Random(10, 15, 1)
	pi, err := ByHash(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pi.Parts[0].WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadPartition(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated accepted")
	}
}
