package dist

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"testing/quick"

	"ccp/internal/control"
	"ccp/internal/gen"
	"ccp/internal/graph"
	"ccp/internal/partition"
)

// localCluster builds an in-process coordinator over k hash partitions of g.
func localCluster(t testing.TB, g *graph.Graph, k int, opts Options) (*Coordinator, *partition.Partitioning) {
	t.Helper()
	pi, err := partition.ByHash(g, k)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]SiteClient, k)
	for i, p := range pi.Parts {
		clients[i] = &LocalClient{Site: NewSite(p, 2), MeasureBytes: true}
	}
	return NewCoordinator(clients, opts), pi
}

func TestDistributedMatchesCentralizedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(60)
		g := gen.Random(n, rng.Intn(5*n), rng.Int63())
		k := 1 + rng.Intn(4)
		for _, useCache := range []bool{false, true} {
			coord, _ := localCluster(t, g, k, Options{UseCache: useCache, Workers: 2})
			for i := 0; i < 6; i++ {
				q := control.Query{
					S: graph.NodeID(rng.Intn(n)),
					T: graph.NodeID(rng.Intn(n)),
				}
				want := control.CBE(g, q)
				got, m, err := coord.Answer(context.Background(), q)
				if err != nil {
					t.Fatalf("trial %d cache=%v %v: %v", trial, useCache, q, err)
				}
				if got != want {
					t.Fatalf("trial %d cache=%v %v: distributed=%v centralized=%v (metrics %+v)",
						trial, useCache, q, got, want, m)
				}
			}
		}
	}
}

func TestDistributedMatchesCentralizedEU(t *testing.T) {
	eu := gen.EU(gen.EUConfig{Countries: 4, NodesPerCountry: 2000, InterconnectRate: 0.01, Seed: 77})
	pi, err := partition.ByContiguous(eu.G, 4)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]SiteClient, len(pi.Parts))
	for i, p := range pi.Parts {
		clients[i] = &LocalClient{Site: NewSite(p, 2), MeasureBytes: true}
	}
	coord := NewCoordinator(clients, Options{Workers: 2})
	rng := rand.New(rand.NewSource(5))
	n := eu.G.Cap()
	for i := 0; i < 25; i++ {
		q := control.Query{S: graph.NodeID(rng.Intn(n)), T: graph.NodeID(rng.Intn(n))}
		want := control.CBE(eu.G, q)
		got, _, err := coord.Answer(context.Background(), q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if got != want {
			t.Fatalf("%v: distributed=%v centralized=%v", q, got, want)
		}
	}
}

func TestCacheHitsAndInvalidate(t *testing.T) {
	g := gen.ScaleFree(gen.ScaleFreeConfig{Nodes: 4000, AvgOutDegree: 2, Seed: 13})
	pi, err := partition.ByContiguous(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	sites := make([]*Site, 4)
	clients := make([]SiteClient, 4)
	for i, p := range pi.Parts {
		sites[i] = NewSite(p, 2)
		clients[i] = &LocalClient{Site: sites[i], MeasureBytes: true}
	}
	coord := NewCoordinator(clients, Options{UseCache: true, Workers: 2})
	if err := coord.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	// s in partition 0, t in partition 3: sites 1 and 2 must hit the cache.
	q := control.Query{S: 10, T: graph.NodeID(g.Cap() - 10)}
	want := control.CBE(g, q)
	got, m, err := coord.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("answer = %v, want %v", got, want)
	}
	if m.CacheHits != 2 {
		t.Fatalf("cache hits = %d, want 2 (metrics %+v)", m.CacheHits, m)
	}
	// After invalidation the site recomputes; answers stay correct.
	sites[1].Invalidate()
	got2, m2, err := coord.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want || m2.CacheHits != 2 {
		t.Fatalf("after invalidate: got %v hits %d", got2, m2.CacheHits)
	}
}

func TestPartialAnswersAreSmall(t *testing.T) {
	// Partial answers shrink when the interconnection rate is low — the EU
	// setting (Section VII property 3). A country-partitioned EU graph at
	// 0.5% border companies qualifies; a hash-split scale-free graph
	// would not.
	g := gen.EU(gen.EUConfig{Countries: 4, NodesPerCountry: 5000, InterconnectRate: 0.005, Seed: 19}).G
	pi, err := partition.ByContiguous(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]SiteClient, 4)
	for i, p := range pi.Parts {
		clients[i] = &LocalClient{Site: NewSite(p, 2), MeasureBytes: true}
	}
	coord := NewCoordinator(clients, Options{Workers: 2})
	q := control.Query{S: 3, T: graph.NodeID(g.Cap() - 3)}
	_, m, err := coord.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if m.DecidedBy == -1 {
		// The coordinator merged: partial results must be far smaller than
		// the partitions (property 3 of Section VII).
		if m.PartialNodes > g.NumNodes()/5 {
			t.Fatalf("partials hold %d of %d nodes", m.PartialNodes, g.NumNodes())
		}
		if m.Bytes <= 0 {
			t.Fatal("no traffic accounted")
		}
		if m.MGraphNodes <= 0 {
			t.Fatal("merged graph empty")
		}
	}
	if m.SitesQueried != 4 {
		t.Fatalf("sites queried = %d", m.SitesQueried)
	}
}

func TestSiteEvaluateDecidesT3Locally(t *testing.T) {
	// s directly controls t inside one partition: that site answers alone.
	g := graph.New(4)
	if err := g.AddEdge(0, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3, 0.2); err != nil {
		t.Fatal(err)
	}
	pi, err := partition.Split(g, []int{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	site := NewSite(pi.Parts[0], 1)
	pa, err := site.Evaluate(context.Background(), control.Query{S: 0, T: 1}, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pa.Ans != control.True || pa.Reduced != nil {
		t.Fatalf("partial = %+v", pa)
	}
}

func TestSiteDoesNotTrustT1WithoutS(t *testing.T) {
	// Partition 1 does not store s; it must not conclude "false" from s's
	// local absence.
	g := graph.New(4)
	if err := g.AddEdge(0, 2, 0.9); err != nil { // cross edge into partition 1
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3, 0.9); err != nil {
		t.Fatal(err)
	}
	pi, err := partition.Split(g, []int{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	site1 := NewSite(pi.Parts[1], 1)
	pa, err := site1.Evaluate(context.Background(), control.Query{S: 0, T: 3}, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pa.Ans == control.False {
		t.Fatal("site invented a global false without holding s")
	}
}

func TestCoordinatorNoSites(t *testing.T) {
	coord := NewCoordinator(nil, Options{})
	if _, _, err := coord.Answer(context.Background(), control.Query{S: 0, T: 1}); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	g := gen.EU(gen.EUConfig{Countries: 3, NodesPerCountry: 1500, InterconnectRate: 0.01, Seed: 55}).G
	pi, err := partition.ByContiguous(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]SiteClient, 3)
	for i, p := range pi.Parts {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func(p *partition.Partition) {
			if err := Serve(context.Background(), l, NewSite(p, 2)); err != nil {
				t.Errorf("serve: %v", err)
			}
		}(p)
		c, err := Dial(context.Background(), l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if c.SiteID() != i {
			t.Fatalf("site id = %d, want %d", c.SiteID(), i)
		}
		clients[i] = c
	}
	coord := NewCoordinator(clients, Options{UseCache: true, Workers: 2})
	if err := coord.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 12; i++ {
		q := control.Query{
			S: graph.NodeID(rng.Intn(g.Cap())),
			T: graph.NodeID(rng.Intn(g.Cap())),
		}
		want := control.CBE(g, q)
		got, m, err := coord.Answer(context.Background(), q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if got != want {
			t.Fatalf("%v over TCP: got %v, want %v", q, got, want)
		}
		if m.DecidedBy == -1 && m.Bytes == 0 {
			t.Fatalf("%v: merged without observing traffic", q)
		}
	}
}

// TestQuickDistributedEquivalence: for arbitrary random graphs, partition
// counts and cache settings, the distributed evaluation equals CBE.
func TestQuickDistributedEquivalence(t *testing.T) {
	f := func(seed int64, nn, mm, kk, ss, tt uint8, useCache bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nn%40)
		g := gen.Random(n, int(mm)%(4*n), rng.Int63())
		k := 1 + int(kk%5)
		coord, _ := localCluster(t, g, k, Options{UseCache: useCache, Workers: 1})
		q := control.Query{S: graph.NodeID(int(ss) % n), T: graph.NodeID(int(tt) % n)}
		want := control.CBE(g, q)
		got, _, err := coord.Answer(context.Background(), q)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
