package control

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccp/internal/gen"
	"ccp/internal/graph"
)

func TestUltimateControllersChain(t *testing.T) {
	// 0 -0.6-> 1 -0.7-> 2 -0.8-> 3, plus independent 4 with a minority
	// shareholder 0 (0.3).
	g := build(t, 5,
		graph.Edge{From: 0, To: 1, Weight: 0.6},
		graph.Edge{From: 1, To: 2, Weight: 0.7},
		graph.Edge{From: 2, To: 3, Weight: 0.8},
		graph.Edge{From: 0, To: 4, Weight: 0.3},
	)
	heads := UltimateControllers(g)
	for v, want := range map[graph.NodeID]graph.NodeID{0: 0, 1: 0, 2: 0, 3: 0, 4: 4} {
		if heads[v] != want {
			t.Fatalf("head(%d) = %d, want %d", v, heads[v], want)
		}
	}
	groups := Groups(g)
	if len(groups) != 1 || groups[0].Head != 0 || len(groups[0].Members) != 4 {
		t.Fatalf("groups = %+v", groups)
	}
}

func TestUltimateControllersCycle(t *testing.T) {
	// 1 and 2 hold majorities of each other; 2 controls 3.
	g := build(t, 4,
		graph.Edge{From: 1, To: 2, Weight: 0.6},
		graph.Edge{From: 2, To: 1, Weight: 0.6},
		graph.Edge{From: 2, To: 3, Weight: 0.9},
	)
	heads := UltimateControllers(g)
	if heads[1] != 1 || heads[2] != 1 || heads[3] != 1 {
		t.Fatalf("heads = %v", heads)
	}
}

func TestGroupsOrdering(t *testing.T) {
	// Two groups: {0,1,2} headed by 0 and {5,6} headed by 5.
	g := build(t, 7,
		graph.Edge{From: 0, To: 1, Weight: 0.6},
		graph.Edge{From: 0, To: 2, Weight: 0.6},
		graph.Edge{From: 5, To: 6, Weight: 0.9},
	)
	groups := Groups(g)
	if len(groups) != 2 {
		t.Fatalf("groups = %+v", groups)
	}
	if groups[0].Head != 0 || len(groups[0].Members) != 3 {
		t.Fatalf("largest first: %+v", groups)
	}
	if groups[1].Head != 5 || len(groups[1].Members) != 2 {
		t.Fatalf("second group: %+v", groups)
	}
	// Members sorted.
	for _, gr := range groups {
		for i := 1; i < len(gr.Members); i++ {
			if gr.Members[i-1] >= gr.Members[i] {
				t.Fatalf("members unsorted: %v", gr.Members)
			}
		}
	}
}

// TestQuickUltimateControllersSound: every company's head reaches it through
// a chain of direct controllers (so the head controls the company per CBE),
// every live node has a head, and heads are fixpoints.
func TestQuickUltimateControllersSound(t *testing.T) {
	f := func(seed int64, nn, mm uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nn%40)
		g := gen.Random(n, int(mm)%(4*n), rng.Int63())
		heads := UltimateControllers(g)
		if len(heads) != g.NumNodes() {
			return false
		}
		ok := true
		g.EachNode(func(v graph.NodeID) {
			h, present := heads[v]
			if !present {
				ok = false
				return
			}
			// The head maps to itself.
			if heads[h] != h {
				ok = false
				return
			}
			// The head controls v (chains of majorities are control).
			if h != v && !CBE(g, Query{h, v}) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
