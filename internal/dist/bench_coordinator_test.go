package dist

import (
	"context"
	"sync"
	"testing"

	"ccp/internal/control"
	"ccp/internal/gen"
	"ccp/internal/graph"
	"ccp/internal/partition"
)

// benchMergeInputs builds realistic coordinator merge inputs: a pre-cached
// 4-site EU cluster evaluates one cross-border query with ForcePartial, so
// the two endpoint sites return live reduced partials and the other two are
// served from their query-independent caches (the snapshot skeleton merges
// those). Returned graphs are owned by the caller.
func benchMergeInputs(tb testing.TB) (skeleton *graph.Graph, live []*graph.Graph) {
	tb.Helper()
	g := gen.EU(gen.EUConfig{Countries: 4, NodesPerCountry: 1200, InterconnectRate: 0.01, Seed: 9}).G
	pi, err := partition.ByContiguous(g, 4)
	if err != nil {
		tb.Fatal(err)
	}
	q := control.Query{S: 5, T: graph.NodeID(g.Cap() - 5)}
	skeleton = graph.New(0)
	for _, p := range pi.Parts {
		s := NewSite(p, 1)
		if _, err := s.Precompute(context.Background()); err != nil {
			tb.Fatal(err)
		}
		pa, err := s.Evaluate(context.Background(), q, EvalOptions{UseCache: true, ForcePartial: true})
		if err != nil {
			tb.Fatal(err)
		}
		if pa.Reduced == nil {
			tb.Fatalf("site %d returned no partial", s.ID())
		}
		if pa.FromCache {
			skeleton.Merge(pa.Reduced)
		} else {
			live = append(live, pa.Reduced)
		}
	}
	if len(live) == 0 || skeleton.NumNodes() == 0 {
		tb.Fatalf("query split unexpectedly: %d live partials, %d skeleton nodes",
			len(live), skeleton.NumNodes())
	}
	return skeleton, live
}

// BenchmarkCoordinatorMerge measures the per-query merge work of the batch
// path: materialize the merged graph from the cached-partial skeleton, then
// merge the live partials on top. "clone" is the allocating path (a fresh
// graph per query); "pooled" is the batch path (CloneInto over reused
// scratch).
func BenchmarkCoordinatorMerge(b *testing.B) {
	skeleton, live := benchMergeInputs(b)
	b.Run("clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mg := skeleton.Clone()
			for _, p := range live {
				mg.Merge(p)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		scratch := graph.New(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mg := skeleton.CloneInto(scratch)
			for _, p := range live {
				mg.Merge(p)
			}
		}
	})
}

// benchPartialResponse encodes one live partial answer for the decode
// benchmarks — the payload a remote site ships for a merge-path query.
func benchPartialResponse(tb testing.TB) *response {
	tb.Helper()
	_, live := benchMergeInputs(tb)
	resp, err := encodePartial(&PartialAnswer{SiteID: 0, Ans: control.Unknown, Reduced: live[0]})
	if err != nil {
		tb.Fatal(err)
	}
	return resp
}

// BenchmarkPartialDecode measures turning a wire response back into a
// partial answer. "fresh" allocates a graph per decode (the pre-pool path);
// "pooled" decodes into recycled scratch and releases it, the steady state
// of the concurrent batch path.
func BenchmarkPartialDecode(b *testing.B) {
	resp := benchPartialResponse(b)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(resp.GraphBytes)))
		for i := 0; i < b.N; i++ {
			if _, err := decodePartial(resp, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		var pool sync.Pool
		b.ReportAllocs()
		b.SetBytes(int64(len(resp.GraphBytes)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pa, err := decodePartial(resp, &pool)
			if err != nil {
				b.Fatal(err)
			}
			pa.Release()
		}
	})
}

// TestPartialDecodePooledSteadyStateAllocs pins the copy-free decode: once
// the pool is warm, decoding a partial answer allocates only the
// PartialAnswer header itself — the graph payload lands in recycled scratch.
func TestPartialDecodePooledSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented sync.Pool drops Puts at random; alloc pin does not hold")
	}
	resp := benchPartialResponse(t)
	var pool sync.Pool
	// Warm the pool.
	pa, err := decodePartial(resp, &pool)
	if err != nil {
		t.Fatal(err)
	}
	pa.Release()
	allocs := testing.AllocsPerRun(50, func() {
		pa, err := decodePartial(resp, &pool)
		if err != nil {
			panic(err)
		}
		pa.Release()
	})
	if allocs > 1 {
		t.Fatalf("pooled decodePartial allocated %.1f times per run, want <= 1 (the PartialAnswer header)", allocs)
	}
}
