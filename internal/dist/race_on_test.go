//go:build race

package dist

// raceEnabled reports whether the race detector is on. Alloc-count pins are
// skipped under -race: the instrumented sync.Pool intentionally drops a
// fraction of Puts, so steady-state pooling can't be asserted there.
const raceEnabled = true
