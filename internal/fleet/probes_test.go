package fleet

// In-package probe tests: violations are injected by poking the unexported
// counters and watermarks directly — the only way to make a healthy gate or
// follower lie without a real corruption.

import (
	"context"
	"strings"
	"testing"

	"ccp/internal/dist"
	"ccp/internal/gen"
	"ccp/internal/partition"
)

func TestGateAccountingProbeBalances(t *testing.T) {
	g := NewGate(GateConfig{MaxInFlight: 2, MaxQueue: 2})
	probe := g.AccountingProbe()
	if probe.Name != "gate.accounting" {
		t.Fatalf("probe name = %q", probe.Name)
	}
	if r := probe.Check(); !r.OK {
		t.Fatalf("fresh gate violated: %s", r.Detail)
	}

	// Normal traffic: admissions, releases, and sheds all balance.
	ctx := context.Background()
	var releases []func()
	for i := 0; i < 2; i++ {
		rel, err := g.Admit(ctx)
		if err != nil {
			t.Fatalf("Admit %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if r := probe.Check(); !r.OK {
		t.Fatalf("violated with slots full: %s", r.Detail)
	}
	for _, rel := range releases {
		rel()
	}
	if r := probe.Check(); !r.OK {
		t.Fatalf("violated after release: %s", r.Detail)
	}
	a := g.Accounting()
	if a.Offered != 2 || a.Admitted != 2 || a.Pending != 0 {
		t.Fatalf("accounting = %+v", a)
	}

	// Injection: bump an outcome counter without an arrival. The books no
	// longer balance, quiescently — the probe must fire.
	g.met.admitted.Inc()
	r := probe.Check()
	if r.OK {
		t.Fatal("probe passed over broken accounting")
	}
	if !strings.Contains(r.Detail, "offered 2") || !strings.Contains(r.Detail, "admitted 3") {
		t.Fatalf("violation detail = %q", r.Detail)
	}
}

// testFollower builds a minimal follower around a real in-memory site —
// enough state for the divergence probe without a leader or TCP.
func testFollower(t *testing.T) *Follower {
	t.Helper()
	g := gen.Random(40, 120, 1)
	pi, err := partition.ByContiguous(g, 2)
	if err != nil {
		t.Fatalf("partitioning: %v", err)
	}
	f := &Follower{}
	f.site.Store(dist.NewSite(pi.Parts[0], 1))
	return f
}

func TestDivergenceProbeHealthy(t *testing.T) {
	f := testFollower(t)
	f.applied.Store(100)
	f.leaderSeq.Store(100)
	f.boots.Store(1)
	probe := f.DivergenceProbe(1000)
	if probe.Name != "fleet.divergence" {
		t.Fatalf("probe name = %q", probe.Name)
	}
	if r := probe.Check(); !r.OK {
		t.Fatalf("converged follower violated: %s", r.Detail)
	}
	// Normal progress stays green.
	f.applied.Store(150)
	f.leaderSeq.Store(160)
	if r := probe.Check(); !r.OK {
		t.Fatalf("lagging-within-ceiling follower violated: %s", r.Detail)
	}
}

func TestDivergenceProbeAppliedAheadOfLeader(t *testing.T) {
	f := testFollower(t)
	f.applied.Store(120)
	f.leaderSeq.Store(100)
	r := f.DivergenceProbe(0).Check()
	if r.OK || !strings.Contains(r.Detail, "ahead of leader head") {
		t.Fatalf("got %+v, want applied-ahead violation", r)
	}
}

func TestDivergenceProbeEpochAheadOfApplied(t *testing.T) {
	f := testFollower(t)
	f.applied.Store(50)
	f.leaderSeq.Store(100)
	f.site.Load().SeedEpoch(80)
	r := f.DivergenceProbe(0).Check()
	if r.OK || !strings.Contains(r.Detail, "epoch 80 ahead of applied seq 50") {
		t.Fatalf("got %+v, want epoch-ahead violation", r)
	}
}

func TestDivergenceProbeLagCeiling(t *testing.T) {
	f := testFollower(t)
	f.applied.Store(10)
	f.leaderSeq.Store(500) // frozen follower: the leader ran away
	probe := f.DivergenceProbe(100)
	r := probe.Check()
	if r.OK || !strings.Contains(r.Detail, "exceeds ceiling 100") {
		t.Fatalf("got %+v, want lag-ceiling violation", r)
	}
	// With no ceiling the same lag is legal.
	if r := f.DivergenceProbe(0).Check(); !r.OK {
		t.Fatalf("lag violated with ceiling disabled: %s", r.Detail)
	}
}

func TestDivergenceProbeRewindNeedsRebootstrap(t *testing.T) {
	f := testFollower(t)
	f.applied.Store(200)
	f.leaderSeq.Store(200)
	f.boots.Store(1)
	probe := f.DivergenceProbe(0)
	if r := probe.Check(); !r.OK {
		t.Fatalf("baseline: %s", r.Detail)
	}

	// The applied watermark runs backwards with no re-bootstrap: divergence.
	f.applied.Store(150)
	f.leaderSeq.Store(200)
	r := probe.Check()
	if r.OK || !strings.Contains(r.Detail, "rewound 200 -> 150 without a re-bootstrap") {
		t.Fatalf("got %+v, want rewind violation", r)
	}

	// The same rewind across a re-bootstrap (truncated leader) is legal and
	// resets the baseline.
	f.boots.Add(1)
	if r := probe.Check(); !r.OK {
		t.Fatalf("rewind across re-bootstrap violated: %s", r.Detail)
	}
	f.applied.Store(140) // rewind again after the reset: violation again
	if r := probe.Check(); r.OK {
		t.Fatal("post-bootstrap rewind passed")
	}
}
