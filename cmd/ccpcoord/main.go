// Command ccpcoord runs the coordinator of a distributed company-control
// deployment: it connects to ccpd worker sites and answers control queries
// by partial evaluation and merging (Algorithm 2 of the paper).
//
// Usage:
//
//	ccpcoord -sites host:7001,host:7002 [-cache] [-precompute] -s 12 -t 9441
//
// Pass several queries as trailing "s:t" arguments to amortize the
// connections, e.g.:
//
//	ccpcoord -sites a:7001,b:7001 -cache -precompute 12:9441 7:15
//
// A site may be a replica set: join the leader and its follower replicas
// (ccpd -replica-of) with "+", e.g. -sites lead0:7001+f0:7101,lead1:7002.
// Reads then route to the least-loaded fresh replica with automatic
// fallback to the leader; writes go to leaders only.
//
// With -concurrency n > 1, trailing queries are answered as one batch with
// up to n queries in flight at once, multiplexed over the site connections.
// With -timeout d, every query carries deadline d, enforced at the sites;
// SIGINT/SIGTERM cancels whatever is in flight. With -max-inflight n,
// admission control sheds queries beyond the configured concurrency and
// queue instead of letting a saturated tier drag every query's tail.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ccp"
	"ccp/cmd/internal/cli"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ccpcoord: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	sites := flag.String("sites", "", "comma-separated worker addresses; join a leader with its follower replicas using '+' (lead:7001+f0:7101)")
	cache := flag.Bool("cache", false, "serve non-endpoint sites from their pre-computed reductions")
	precompute := flag.Bool("precompute", false, "ask all sites to pre-compute before querying")
	s := flag.Int("s", -1, "source company (alternative to trailing s:t args)")
	t := flag.Int("t", -1, "target company")
	workers := flag.Int("workers", 0, "coordinator reduction parallelism")
	concurrency := flag.Int("concurrency", 1, "batch queries kept in flight at once (>1 answers the trailing queries as one concurrent batch)")
	timeout := flag.Duration("timeout", 0, "per-query deadline, enforced at the sites (0 = none)")
	opsAddr := flag.String("ops-addr", "", "ops HTTP address serving /metrics, /healthz, /varz, /audit, /slo, /debug/flight, /debug/pprof (empty = disabled)")
	sloAvail := flag.Float64("slo-availability", 0.999, "availability SLO objective (fraction of queries answered without error)")
	sloLatency := flag.Float64("slo-latency", 0.99, "latency SLO objective (fraction of queries under -slo-latency-target)")
	sloTarget := flag.Duration("slo-latency-target", 250*time.Millisecond, "latency SLO target per query")
	slowQuery := flag.Duration("slow-query", 0, "record stitched traces of queries slower than this in /varz (0 = disabled)")
	maxInflight := flag.Int("max-inflight", 0, "admission control: queries running at once before new ones queue (0 = unlimited, no admission control)")
	maxQueue := flag.Int("max-queue", 0, "admission control: queries waiting beyond -max-inflight before shedding (0 = 2x max-inflight)")
	maxQueueWait := flag.Duration("max-queue-wait", 0, "admission control: longest a queued query waits before shedding (0 = 50ms)")
	flightOut := flag.String("flight-out", "", "write the coordinator's flight-recorder dump (JSON) here on exit")
	lf := cli.RegisterLogFlags(flag.CommandLine)
	flag.Parse()
	if *sites == "" {
		flag.Usage()
		os.Exit(2)
	}
	logger, err := lf.Logger()
	if err != nil {
		fatalf("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The observer (and its flight recorder) is always on; the ops HTTP
	// surface and the slow-query log remain opt-in.
	observer := ccp.NewObserver(ccp.ObserverConfig{SlowQueryThreshold: *slowQuery, Process: "coord"})
	ccp.RegisterBuildInfo(observer.Registry(), "coordinator")
	defer cli.DumpFlightOnQuit(observer)()
	if *flightOut != "" {
		defer func() {
			f, err := os.Create(*flightOut)
			if err != nil {
				logger.Error("cannot write flight dump", "path", *flightOut, "err", err)
				return
			}
			werr := cli.WriteFlightDump(f, observer)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				logger.Error("cannot write flight dump", "path", *flightOut, "err", werr)
			}
		}()
	}

	cluster, err := ccp.ConnectReplicatedCluster(ctx, ccp.ParseReplicaAddrs(*sites), ccp.ClusterOptions{
		UseCache:           *cache,
		CoordinatorWorkers: *workers,
		Concurrency:        *concurrency,
		MaxInFlight:        *maxInflight,
		MaxQueuedQueries:   *maxQueue,
		MaxQueueWait:       *maxQueueWait,
		Observer:           observer,
		Logger:             logger,
	})
	if err != nil {
		fatalf("cannot connect: %v", err)
	}
	defer cluster.Close()
	logger.Info("connected", "sites", cluster.Sites())

	// The auditor re-checks the coordinator's conservation laws (snapshot
	// cache, admission accounting) on a background interval and tracks the
	// query SLOs: availability over the error-free fraction, latency over
	// the fraction under the target. Both burn multi-window error budgets
	// exported as ccp_slo_* and served on /slo.
	auditor := ccp.NewAuditor(ccp.AuditConfig{Observer: observer})
	for _, p := range cluster.AuditProbes() {
		auditor.Register(p)
	}
	reg := observer.Registry()
	qTotal := reg.Counter("ccp_queries_total", "Distributed queries answered, including failed ones.")
	qErrors := reg.Counter("ccp_query_errors_total", "Distributed queries that failed.")
	auditor.RegisterSLO(ccp.SLOConfig{
		Name:      "query_availability",
		Objective: *sloAvail,
		Source: func() (good, total float64) {
			t := float64(qTotal.Value())
			return t - float64(qErrors.Value()), t
		},
	})
	latencyHist := reg.Histogram("ccp_query_seconds",
		"End-to-end distributed query latency in seconds.", nil)
	target := sloTarget.Seconds()
	auditor.RegisterSLO(ccp.SLOConfig{
		Name:      "query_latency",
		Objective: *sloLatency,
		Source: func() (good, total float64) {
			s := latencyHist.Snapshot()
			var under uint64
			for i, b := range s.Bounds {
				if b > target {
					break
				}
				under += s.Counts[i]
			}
			return float64(under), float64(s.Count)
		},
	})
	auditor.Start()
	defer auditor.Close()

	if *opsAddr != "" {
		// Healthy means every site is reachable right now: connected with a
		// closed circuit. Degraded (503) surfaces the first broken transport
		// to an external prober; the JSON detail carries the full per-site
		// health table either way.
		ops, err := ccp.StartOpsServer(*opsAddr, observer, func() (bool, any) {
			health := cluster.Health()
			ok := true
			for _, h := range health {
				if !h.Connected || h.CircuitOpen {
					ok = false
					break
				}
			}
			return ok, health
		}, auditor.Endpoints()...)
		if err != nil {
			fatalf("%v", err)
		}
		defer ops.Shutdown(context.Background())
		logger.Info("ops endpoints up", "url", "http://"+ops.Addr(),
			"endpoints", "/metrics /healthz /varz /audit /slo /debug/flight /debug/pprof")
	}

	// queryCtx derives one query's context, carrying the -timeout deadline.
	queryCtx := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(ctx, *timeout)
		}
		return context.WithCancel(ctx)
	}

	if *precompute {
		start := time.Now()
		if err := cluster.Precompute(ctx); err != nil {
			fatalf("precompute: %v", err)
		}
		logger.Info("pre-computed all partial answers", "elapsed", time.Since(start))
	}

	var queries [][2]int
	if *s >= 0 && *t >= 0 {
		queries = append(queries, [2]int{*s, *t})
	}
	for _, arg := range flag.Args() {
		parts := strings.SplitN(arg, ":", 2)
		if len(parts) != 2 {
			fatalf("bad query %q, want s:t", arg)
		}
		qs, err1 := strconv.Atoi(parts[0])
		qt, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			fatalf("bad query %q, want s:t", arg)
		}
		queries = append(queries, [2]int{qs, qt})
	}
	if len(queries) == 0 {
		fatalf("no queries (use -s/-t or trailing s:t args)")
	}

	answered := 0
	start := time.Now()
	defer func() {
		logger.Info("done", "answered", answered, "queries", len(queries),
			"sites", cluster.Sites(), "elapsed", time.Since(start))
	}()

	if *concurrency > 1 && len(queries) > 1 {
		pairs := make([][2]ccp.NodeID, len(queries))
		for i, q := range queries {
			pairs[i] = [2]ccp.NodeID{ccp.NodeID(q[0]), ccp.NodeID(q[1])}
		}
		bctx, cancel := queryCtx()
		ans, m, err := cluster.ControlsBatch(bctx, pairs)
		cancel()
		if err != nil {
			fatalf("batch: %v", err)
		}
		elapsed := time.Since(start)
		for i, q := range queries {
			fmt.Printf("q_c(%d,%d) = %v\n", q[0], q[1], ans[i])
		}
		answered = len(queries)
		qpm := 0.0
		if elapsed > 0 {
			qpm = float64(len(queries)) / elapsed.Minutes()
		}
		fmt.Printf("batch: %d queries in %v (%.0f q/min, concurrency %d)  traffic=%dB cache-hits=%d coord-cache-hits=%d snapshot-hits=%d\n",
			len(queries), elapsed, qpm, *concurrency,
			m.BytesTransferred, m.CacheHits, m.CoordCacheHits, m.SnapshotHits)
		return
	}

	for _, q := range queries {
		qstart := time.Now()
		qctx, cancel := queryCtx()
		ans, m, err := cluster.Controls(qctx, ccp.NodeID(q[0]), ccp.NodeID(q[1]))
		cancel()
		if err != nil {
			fatalf("q_c(%d,%d): %v", q[0], q[1], err)
		}
		answered++
		where := "merged at coordinator"
		if m.DecidedBySite >= 0 {
			where = fmt.Sprintf("decided by site %d", m.DecidedBySite)
		}
		fmt.Printf("q_c(%d,%d) = %-5v  %-12v  %s  site-max=%v coord=%v traffic=%dB cache-hits=%d\n",
			q[0], q[1], ans, time.Since(qstart), where,
			m.MaxSiteTime, m.CoordinatorTime, m.BytesTransferred, m.CacheHits)
	}
}
