package par

import (
	"sync"
	"time"
)

// Meter records the critical path of parallel constructs. On a machine with
// fewer cores than workers (in the limit, a single core), the blocks of a
// barrier run serialized, so their individually measured times still equal
// what each of w dedicated cores would spend; the barrier's contribution to
// a true w-core wall clock is its longest block. Summing per-barrier
// critical paths and the unparallelized remainder yields the simulated
// elapsed time the same run would achieve on w real cores — the quantity
// the Figure 8.d cores sweep needs on hosts without 20 CPUs.
//
// A nil *Meter is valid and records nothing. A Meter must not be shared by
// concurrent runs.
type Meter struct {
	mu        sync.Mutex
	start     time.Time
	critical  time.Duration // Σ per-barrier longest block
	blockTime time.Duration // Σ all block times
	elapsed   time.Duration
}

// NewMeter returns a started Meter.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// record merges one barrier's block timings into the meter.
func (m *Meter) record(blocks []time.Duration) {
	if m == nil {
		return
	}
	var max, sum time.Duration
	for _, b := range blocks {
		sum += b
		if b > max {
			max = b
		}
	}
	m.mu.Lock()
	m.critical += max
	m.blockTime += sum
	m.mu.Unlock()
}

// Stop freezes the measured wall-clock time.
func (m *Meter) Stop() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.elapsed = time.Since(m.start)
	m.mu.Unlock()
}

// Elapsed returns the measured wall-clock time between NewMeter and Stop.
func (m *Meter) Elapsed() time.Duration {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.elapsed
}

// SimulatedElapsed estimates the wall-clock the metered run would take with
// one dedicated core per worker: the unparallelized remainder plus each
// barrier's critical path. On a host that truly has enough cores it
// approaches Elapsed from below.
func (m *Meter) SimulatedElapsed() time.Duration {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	serial := m.elapsed - m.blockTime
	if serial < 0 {
		serial = 0
	}
	return serial + m.critical
}

// MeteredFor is For with per-block timing recorded into m (which may be
// nil, making it exactly For).
func MeteredFor(m *Meter, n, workers int, fn func(lo, hi int)) {
	if m == nil {
		For(n, workers, fn)
		return
	}
	if n <= 0 {
		return
	}
	workers = clamp(workers, n)
	blocks := make([]time.Duration, 0, workers)
	var mu sync.Mutex
	For(n, workers, func(lo, hi int) {
		start := time.Now()
		fn(lo, hi)
		d := time.Since(start)
		mu.Lock()
		blocks = append(blocks, d)
		mu.Unlock()
	})
	m.record(blocks)
}

// MeteredRunSharded is RunSharded with per-shard timing recorded into m.
func MeteredRunSharded[T any](m *Meter, b Buckets[T], fn func(shard int, items []T)) {
	if m == nil {
		RunSharded(b, fn)
		return
	}
	blocks := make([]time.Duration, 0, len(b))
	var mu sync.Mutex
	RunSharded(b, func(shard int, items []T) {
		start := time.Now()
		fn(shard, items)
		d := time.Since(start)
		mu.Lock()
		blocks = append(blocks, d)
		mu.Unlock()
	})
	m.record(blocks)
}

// MeteredCollect is Collect with each generation block metered.
func MeteredCollect[T any](m *Meter, n, shards int, gen func(i int, emit func(shard int, item T))) Buckets[T] {
	return collect(m, n, shards, gen)
}
