#!/bin/sh
# bench_gate.sh — the continuous perf-regression gate.
#
# Runs the ccpbench throughput concurrency sweep twice (baseline, then
# current), gates current against baseline with a noise threshold, and
# appends the outcome to BENCH_history.jsonl. Then runs the gate's own
# negative self-test: the same comparison with -handicap 2 (a synthetic 2x
# slowdown) must exit 3, proving the gate actually fails when performance
# collapses — a gate that cannot fail guards nothing.
#
# Both sweeps run on the same tree, so a pass here means "the gate machinery
# works and the measured tree is self-consistent". To gate a change against
# its merge-base, run the baseline sweep on the base commit and export
# BENCH_GATE_BASELINE to point at its output.
#
# The sweep rows carry speedup_vs_serial for the concurrent levels, and the
# comparison gates those series too — so losing batch scaling (while keeping
# absolute throughput) fails the gate just like a throughput drop. The
# current sweep also records mutex/block contention profiles so a scaling
# regression comes with the evidence of where the time went.
#
# The datalog planner gets the same treatment: the datalog experiment runs
# twice (baseline, current), the planned-vs-semi-naive speedup and the
# goal-directed fraction are gated, the BenchmarkDatalog* microbenchmarks
# are smoke-run, and the comparison lands in the same history file.
#
# The durable store gets the same treatment too: the store experiment runs
# twice, and the buffered WAL append rate, the longest-tail replay rate and
# the durable-vs-memory query ratio are gated — at a wider threshold
# (BENCH_GATE_STORE_THRESHOLD), because sub-100ms IO measurements on a
# shared machine are noisier than the second-long query sweeps. An absolute
# floor backs the relative gate: a durable site serving mixed
# queries+updates below half the in-memory site's rate is broken at any
# baseline.
#
# The elastic serving tier gets the same treatment: the fleet experiment
# runs twice (real loopback replication — durable leader, WAL-tailing
# follower, replica-aware routing over paced clients), and the 2-replica
# read speedup is gated relatively plus held to an absolute 1.5x floor —
# routing that cannot scale paced replicas is broken at any baseline.
#
# Tunables (env):
#   BENCH_GATE_SCALE            graph scale factor          (default 0.25)
#   BENCH_GATE_CONCURRENCY      sweep max concurrency       (default 4)
#   BENCH_GATE_SEED             graph seed                  (default 11)
#   BENCH_GATE_REPEATS          runs averaged per point     (default 2)
#   BENCH_GATE_THRESHOLD        noise floor, fraction       (default 0.25)
#   BENCH_GATE_STORE_THRESHOLD  store-series noise floor    (default 0.5)
#   BENCH_GATE_BASELINE         pre-built baseline file     (default: run a sweep)
#   BENCH_GATE_DATALOG_BASELINE pre-built datalog baseline  (default: run the experiment)
#   BENCH_GATE_STORE_BASELINE   pre-built store baseline    (default: run the experiment)
#   BENCH_GATE_FLEET_BASELINE   pre-built fleet baseline    (default: run the experiment)
#   BENCH_GATE_HISTORY          history file to append to   (default BENCH_history.jsonl)
#   BENCH_GATE_PROFILE_DIR      contention profile output   (default bench-profiles)
set -eu

cd "$(dirname "$0")/.."

scale=${BENCH_GATE_SCALE:-0.25}
conc=${BENCH_GATE_CONCURRENCY:-4}
seed=${BENCH_GATE_SEED:-11}
repeats=${BENCH_GATE_REPEATS:-2}
threshold=${BENCH_GATE_THRESHOLD:-0.25}
storethreshold=${BENCH_GATE_STORE_THRESHOLD:-0.5}
history=${BENCH_GATE_HISTORY:-BENCH_history.jsonl}
profiledir=${BENCH_GATE_PROFILE_DIR:-bench-profiles}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

echo "== build ccpbench =="
go build -o "$workdir" ./cmd/ccpbench
bench="$workdir/ccpbench"

baseline=${BENCH_GATE_BASELINE:-}
if [ -z "$baseline" ]; then
    baseline="$workdir/baseline.json"
    echo "== baseline sweep (scale $scale, concurrency $conc, seed $seed) =="
    "$bench" -scale "$scale" -seed "$seed" -repeats "$repeats" \
        -concurrency "$conc" -throughput-out "$baseline" throughput
fi

echo "== current sweep (with contention profiles -> $profiledir) =="
mkdir -p "$profiledir"
"$bench" -scale "$scale" -seed "$seed" -repeats "$repeats" \
    -concurrency "$conc" -throughput-out "$workdir/current.json" \
    -mutexprofile "$profiledir/mutex.pprof" -blockprofile "$profiledir/block.pprof" \
    throughput
for p in mutex block; do
    [ -s "$profiledir/$p.pprof" ] \
        || { echo "bench_gate: $p profile missing or empty" >&2; exit 1; }
done

echo "== workload sanity: every row must exercise the merge path =="
# The sweep's queries are built to reach the coordinator's merge path and,
# after warmup, to hit the merged-graph snapshot cache. A row reporting a
# zero snapshot hit rate means the workload regressed into site-only
# evaluation and the sweep no longer measures coordination at all.
for bad in '"merged_queries": 0,' '"snapshot_hit_rate": 0,'; do
    if grep -q "$bad" "$workdir/current.json"; then
        echo "bench_gate: sweep row has $bad — merge path not exercised:" >&2
        cat "$workdir/current.json" >&2
        exit 1
    fi
done
echo "  all rows merged queries and hit the snapshot cache"

echo "== datalog: baseline and current runs =="
dlbaseline=${BENCH_GATE_DATALOG_BASELINE:-}
if [ -z "$dlbaseline" ]; then
    dlbaseline="$workdir/datalog-baseline.json"
    "$bench" -scale "$scale" -seed "$seed" -repeats "$repeats" \
        -datalog-out "$dlbaseline" datalog
fi
"$bench" -scale "$scale" -seed "$seed" -repeats "$repeats" \
    -datalog-out "$workdir/datalog-current.json" datalog

echo "== datalog sanity: the planner must beat semi-naive re-evaluation =="
# The speedup is also gated relatively below; this is the absolute floor —
# a planner slower than the engine it plans for is broken at any baseline.
grep -q '"speedup_planned_vs_seminaive"' "$workdir/datalog-current.json" \
    || { echo "bench_gate: datalog file records no speedup" >&2; exit 1; }
awk -F'[:,]' '/"speedup_planned_vs_seminaive"/ {
    if ($2 + 0 < 2) { printf "bench_gate: planned speedup %.2fx below the 2x floor\n", $2; exit 1 }
    printf "  planned datalog is %.1fx semi-naive\n", $2
}' "$workdir/datalog-current.json"

echo "== datalog microbenchmarks (smoke) =="
go test -run '^$' -bench '^BenchmarkDatalog' -benchtime 1x ./internal/datalog

echo "== store: baseline and current runs =="
stbaseline=${BENCH_GATE_STORE_BASELINE:-}
if [ -z "$stbaseline" ]; then
    stbaseline="$workdir/store-baseline.json"
    "$bench" -scale "$scale" -seed "$seed" -repeats "$repeats" \
        -store-out "$stbaseline" store
fi
"$bench" -scale "$scale" -seed "$seed" -repeats "$repeats" \
    -store-out "$workdir/store-current.json" store

echo "== store sanity: durability must stay off the read path =="
# The relative gate below holds the ratio steady run-over-run; this is the
# absolute floor — a durable site serving the mixed workload at less than
# half the in-memory rate means commits or snapshots landed on reads.
grep -q '"durable_over_memory"' "$workdir/store-current.json" \
    || { echo "bench_gate: store file records no durable/memory ratio" >&2; exit 1; }
awk -F'[:,]' '/"durable_over_memory"/ {
    if ($2 + 0 < 0.5) { printf "bench_gate: durable site at %.2fx of memory, below the 0.5x floor\n", $2; exit 1 }
    printf "  durable site serves the mixed workload at %.2fx of memory\n", $2
}' "$workdir/store-current.json"

echo "== fleet: baseline and current runs =="
flbaseline=${BENCH_GATE_FLEET_BASELINE:-}
if [ -z "$flbaseline" ]; then
    flbaseline="$workdir/fleet-baseline.json"
    "$bench" -scale "$scale" -seed "$seed" -repeats "$repeats" \
        -fleet-out "$flbaseline" fleet
fi
"$bench" -scale "$scale" -seed "$seed" -repeats "$repeats" \
    -fleet-out "$workdir/fleet-current.json" fleet

echo "== fleet sanity: two replicas must out-serve one =="
# The speedup is also gated relatively below; this is the absolute floor —
# the replicas are paced (fixed per-request service window), so a 2-replica
# set below 1.5x of one replica means the routing tier, not the machine,
# failed to spread the reads.
grep -q '"speedup_vs_one_replica"' "$workdir/fleet-current.json" \
    || { echo "bench_gate: fleet file records no replica speedup" >&2; exit 1; }
awk -F'[:,]' '/"speedup_vs_one_replica"/ {
    if ($2 + 0 < 1.5) { printf "bench_gate: 2-replica read speedup %.2fx below the 1.5x floor\n", $2; exit 1 }
    printf "  2 replicas serve reads at %.2fx of one\n", $2
}' "$workdir/fleet-current.json"

echo "== gate: current vs baseline (threshold $threshold) =="
"$bench" -compare "$baseline" -compare-with "$workdir/current.json" \
    -gate-threshold "$threshold" -history "$history"
"$bench" -compare "$dlbaseline" -compare-with "$workdir/datalog-current.json" \
    -gate-threshold "$threshold" -history "$history"
"$bench" -compare "$stbaseline" -compare-with "$workdir/store-current.json" \
    -gate-threshold "$storethreshold" -history "$history"
"$bench" -compare "$flbaseline" -compare-with "$workdir/fleet-current.json" \
    -gate-threshold "$threshold" -history "$history"

echo "== gate self-test: an injected 2x slowdown must fail =="
status=0
"$bench" -compare "$baseline" -compare-with "$workdir/current.json" \
    -gate-threshold "$threshold" -handicap 2 >"$workdir/selftest.log" 2>&1 || status=$?
if [ "$status" != 3 ]; then
    echo "bench_gate: self-test expected exit 3 (regression), got $status:" >&2
    cat "$workdir/selftest.log" >&2
    exit 1
fi
grep -q "PERFORMANCE REGRESSION" "$workdir/selftest.log" \
    || { echo "bench_gate: self-test exit 3 without the regression banner" >&2; exit 1; }
echo "  self-test tripped the gate as expected (exit 3)"

echo "ok: perf-regression gate passed (history appended to $history)"
