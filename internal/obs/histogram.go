package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// DefaultLatencyBuckets covers query latencies from 50µs to 30s, in
// seconds, roughly ×2.5 per step — wide enough for both the sub-millisecond
// cached path and a deadline-bounded slow site.
var DefaultLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// DefaultSizeBuckets covers payload sizes from 256B to 16MB, in bytes.
var DefaultSizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

// DefaultCountBuckets covers small cardinalities (frontier sizes, batch
// widths): 1 to 1M, ×4 per step.
var DefaultCountBuckets = []float64{
	1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
}

// Histogram is a fixed-bucket histogram with a lock-free Observe: one
// atomic increment for the bucket, one for the total count, and a CAS loop
// for the float sum. Observing on a nil Histogram is a no-op. Snapshots are
// mergeable, so per-shard histograms can be combined into a fleet view.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last bucket is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram over the given upper bounds (nil or empty
// selects DefaultLatencyBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot captures the histogram's state. Concurrent Observes may land
// between the bucket reads, so the snapshot is only approximately atomic —
// fine for exposition, where the scrape interval dwarfs the skew.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, safe to merge,
// serialize, and derive quantiles from.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the +Inf overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// BucketMismatchError reports an attempt to merge histogram snapshots whose
// bucket layouts disagree — different bound sets, or a count slice whose
// length does not match its bounds (a corrupted or hand-built snapshot).
// Summing such buckets would silently misattribute observations, so Merge
// refuses instead.
type BucketMismatchError struct {
	// Reason says which invariant broke ("bound count", "bound value",
	// "count length").
	Reason string
	// A and B describe the two layouts (lengths or differing values).
	A, B string
}

func (e *BucketMismatchError) Error() string {
	return fmt.Sprintf("obs: cannot merge histograms: %s mismatch (%s vs %s)", e.Reason, e.A, e.B)
}

// Merge combines two snapshots taken over the same bucket bounds into a new
// one. Merging is commutative and associative (bucket counts add), so any
// merge order over a set of shards produces the same aggregate. A zero
// snapshot merges as the identity; snapshots with mismatched bucket layouts
// return a *BucketMismatchError and the zero snapshot.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if s.Bounds == nil && s.Count == 0 {
		return o, nil
	}
	if o.Bounds == nil && o.Count == 0 {
		return s, nil
	}
	if err := layoutMismatch(s, o); err != nil {
		return HistogramSnapshot{}, err
	}
	m := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Sum:    s.Sum + o.Sum,
		Count:  s.Count + o.Count,
	}
	for i := range s.Counts {
		m.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return m, nil
}

// layoutMismatch checks that two snapshots share one bucket layout.
func layoutMismatch(s, o HistogramSnapshot) error {
	if len(s.Bounds) != len(o.Bounds) {
		return &BucketMismatchError{
			Reason: "bound count",
			A:      fmt.Sprintf("%d bounds", len(s.Bounds)),
			B:      fmt.Sprintf("%d bounds", len(o.Bounds)),
		}
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return &BucketMismatchError{
				Reason: "bound value",
				A:      fmt.Sprintf("bounds[%d]=%v", i, s.Bounds[i]),
				B:      fmt.Sprintf("bounds[%d]=%v", i, o.Bounds[i]),
			}
		}
	}
	if len(s.Counts) != len(o.Counts) {
		return &BucketMismatchError{
			Reason: "count length",
			A:      fmt.Sprintf("%d counts", len(s.Counts)),
			B:      fmt.Sprintf("%d counts", len(o.Counts)),
		}
	}
	return nil
}

// Sub returns the observations in s that are not in prev — the delta
// between two snapshots of one cumulative histogram, from which per-window
// quantiles can be derived (a sweep row's latency excluding its warmup).
// prev must be an earlier snapshot of the same histogram; mismatched bucket
// layouts return a *BucketMismatchError, and counts that appear to have run
// backwards (never the case for snapshots taken in order) clamp to zero. A
// zero prev subtracts as the identity.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) (HistogramSnapshot, error) {
	if prev.Bounds == nil && prev.Count == 0 {
		return s, nil
	}
	if err := layoutMismatch(s, prev); err != nil {
		return HistogramSnapshot{}, err
	}
	d := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
	}
	if s.Sum > prev.Sum {
		d.Sum = s.Sum - prev.Sum
	}
	if s.Count > prev.Count {
		d.Count = s.Count - prev.Count
	}
	for i := range s.Counts {
		if s.Counts[i] > prev.Counts[i] {
			d.Counts[i] = s.Counts[i] - prev.Counts[i]
		}
	}
	return d, nil
}

// Quantile estimates the q-quantile by linear interpolation inside the
// bucket holding the target rank — the same estimate Prometheus's
// histogram_quantile produces. q outside (0, 1] is clamped (NaN reads as 1).
// Values in the +Inf overflow bucket clamp to the highest finite bound
// rather than interpolating toward infinity. Returns 0 for an empty
// histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if math.IsNaN(q) || q > 1 {
		q = 1
	} else if q < 0 {
		q = 0
	}
	top := s.Bounds[len(s.Bounds)-1]
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket (or a corrupt snapshot with extra counts):
			// no finite upper bound to interpolate to.
			return top
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			within := (rank - float64(cum)) / float64(c)
			if within < 0 {
				within = 0
			}
			return lo + (s.Bounds[i]-lo)*within
		}
		cum += c
	}
	return top
}
