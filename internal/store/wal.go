package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

var (
	// errShortFrame marks a frame cut off by the end of the file — the torn
	// tail of a crash mid-append. Recovery truncates it.
	errShortFrame = errors.New("store: truncated record")
	// errBadFrame marks a complete but invalid frame (CRC or structure).
	errBadFrame = errors.New("store: corrupt record")
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("store: closed")
)

// WAL segment files are named wal-<first>.log where <first> is the first
// sequence number the segment holds, in zero-padded hex so lexical order is
// sequence order. Segments are contiguous: segment i holds sequence numbers
// [first_i, first_{i+1}), the last one [first_n, nextSeq).
const (
	segPrefix = "wal-"
	segSuffix = ".log"
)

type segment struct {
	first uint64 // first sequence number stored in the segment
	path  string
	size  int64
}

func segPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix))
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	first, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return first, true
}

// wal is the append-only log: one active segment receiving appends, zero or
// more sealed segments awaiting checkpoint coverage.
//
// Group commit: appends serialize on mu (buffered write, sequence
// assignment) and then, when fsync is on, rendezvous on syncMu — the first
// appender through flushes and fsyncs everything written so far, and every
// appender that piled up behind it finds its sequence already durable and
// returns without its own fsync. One disk sync absorbs a whole burst.
type wal struct {
	dir   string
	fsync bool

	mu      sync.Mutex // guards writer state and the segment lists
	f       *os.File
	bw      *bufio.Writer
	active  segment
	sealed  []segment // ascending by first
	nextSeq uint64
	scratch []byte
	werr    error // sticky write error: the log is poisoned, refuse appends

	syncMu   sync.Mutex
	appended atomic.Uint64 // last assigned sequence number
	synced   atomic.Uint64 // last sequence number known durable

	appends atomic.Uint64 // lifetime records appended
	fsyncs  atomic.Uint64 // lifetime fsync calls
	bytes   atomic.Int64  // bytes across all live segments
}

// scanResult is what scanning one segment found.
type scanResult struct {
	records int
	lastSeq uint64
	goodLen int64 // bytes of valid records; anything past it is torn
	torn    bool
}

// scanSegment validates seg's frames, checking the CRCs and that sequence
// numbers are contiguous from seg.first. A torn or corrupt tail ends the
// scan; scanSegment reports where the valid prefix ends and never fails on
// it — recovery decides whether to truncate or reject.
func scanSegment(seg segment, fn func(Record) error) (scanResult, error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return scanResult{}, err
	}
	res := scanResult{lastSeq: seg.first - 1}
	off := 0
	for off < len(data) {
		rec, n, err := decodeFrame(data[off:])
		if err != nil {
			res.torn = true
			break
		}
		if rec.Seq != res.lastSeq+1 {
			// A sequence jump inside a segment means the tail belongs to an
			// older, partially overwritten life of the file. Treat as torn.
			res.torn = true
			break
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return res, err
			}
		}
		res.records++
		res.lastSeq = rec.Seq
		off += n
		res.goodLen = int64(off)
	}
	return res, nil
}

// openWAL opens (creating if necessary) the log in dir for appending.
// baseSeq is the newest checkpoint's sequence number: with no segments on
// disk the log starts at baseSeq+1. The final segment's torn tail, if any,
// is truncated; a torn or discontiguous non-final segment is unrecoverable
// corruption and fails the open.
func openWAL(dir string, baseSeq uint64, fsync bool) (*wal, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		if first, ok := parseSegName(e.Name()); ok {
			segs = append(segs, segment{first: first, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	w := &wal{dir: dir, fsync: fsync}
	next := uint64(0) // expected first of the next segment; 0 = any
	for i, seg := range segs {
		if next != 0 && seg.first != next {
			return nil, fmt.Errorf("store: wal gap: segment %s does not continue at %d", seg.path, next)
		}
		res, err := scanSegment(seg, nil)
		if err != nil {
			return nil, err
		}
		last := i == len(segs)-1
		if res.torn && !last {
			return nil, fmt.Errorf("store: wal segment %s corrupt before the final segment", seg.path)
		}
		if res.torn {
			if err := os.Truncate(seg.path, res.goodLen); err != nil {
				return nil, fmt.Errorf("store: truncating torn wal tail: %w", err)
			}
		}
		seg.size = res.goodLen
		segs[i] = seg
		next = res.lastSeq + 1
		w.bytes.Add(seg.size)
	}

	switch {
	case len(segs) == 0:
		w.nextSeq = baseSeq + 1
		if err := w.openActive(segment{first: w.nextSeq, path: segPath(dir, w.nextSeq)}, 0); err != nil {
			return nil, err
		}
	default:
		w.nextSeq = next
		act := segs[len(segs)-1]
		w.sealed = segs[:len(segs)-1]
		if err := w.openActive(act, act.size); err != nil {
			return nil, err
		}
	}
	w.appended.Store(w.nextSeq - 1)
	w.synced.Store(w.nextSeq - 1)
	return w, nil
}

// openActive opens seg for appending at offset size and makes it the active
// segment. Caller holds mu (or is the constructor).
func (w *wal) openActive(seg segment, size int64) error {
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	w.f = f
	if w.bw == nil {
		w.bw = bufio.NewWriterSize(f, 1<<16)
	} else {
		w.bw.Reset(f)
	}
	seg.size = size
	w.active = seg
	return syncDir(w.dir)
}

// append writes rec, assigns its sequence number, and — when fsync is on —
// returns only after the record is durable (riding a group commit when
// other appenders are in flight).
func (w *wal) append(rec Record) (uint64, error) {
	w.mu.Lock()
	if w.werr != nil {
		err := w.werr
		w.mu.Unlock()
		return 0, err
	}
	seq := w.nextSeq
	w.scratch = appendFrame(w.scratch[:0], seq, rec)
	n := len(w.scratch)
	if _, err := w.bw.Write(w.scratch); err != nil {
		w.werr = err
		w.mu.Unlock()
		return 0, err
	}
	w.nextSeq++
	w.active.size += int64(n)
	w.bytes.Add(int64(n))
	w.appended.Store(seq)
	w.appends.Add(1)
	if !w.fsync {
		// Without fsync, "durable" degrades to "handed to the OS"; the
		// in-order store keeps the counters consistent.
		w.synced.Store(seq)
		w.mu.Unlock()
		return seq, nil
	}
	w.mu.Unlock()
	if err := w.syncTo(seq); err != nil {
		return seq, err
	}
	return seq, nil
}

// syncTo makes every record up to at least seq durable. The group-commit
// rendezvous: whoever holds syncMu flushes and syncs the whole written
// prefix; late arrivals usually find their seq already covered.
func (w *wal) syncTo(seq uint64) error {
	if w.synced.Load() >= seq {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced.Load() >= seq {
		return nil // a concurrent commit carried us
	}
	w.mu.Lock()
	target := w.nextSeq - 1
	err := w.bw.Flush()
	if err != nil {
		w.werr = err
	}
	f := w.f
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	w.synced.Store(target)
	return nil
}

// rotate seals the active segment (flushed and fsynced) and starts a new one
// at the current head. Checkpoints call it first so the checkpoint boundary
// never lands mid-segment — every sealed segment is fully covered by the
// next checkpoint and can be deleted wholesale.
func (w *wal) rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.werr != nil {
		return w.werr
	}
	if w.active.size == 0 {
		return nil // nothing in the active segment; reuse it
	}
	if err := w.bw.Flush(); err != nil {
		w.werr = err
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	w.synced.Store(w.nextSeq - 1)
	if err := w.f.Close(); err != nil {
		return err
	}
	w.sealed = append(w.sealed, w.active)
	return w.openActive(segment{first: w.nextSeq, path: segPath(w.dir, w.nextSeq)}, 0)
}

// dropCoveredBy deletes sealed segments whose entire range is at or below
// seq. Segment i's last record is segment i+1's first minus one (the active
// segment bounding the final sealed one).
func (w *wal) dropCoveredBy(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	kept := w.sealed[:0]
	var firstErr error
	for i, s := range w.sealed {
		nextFirst := w.active.first
		if i+1 < len(w.sealed) {
			nextFirst = w.sealed[i+1].first
		}
		if len(kept) == 0 && nextFirst-1 <= seq {
			if err := os.Remove(s.path); err != nil && firstErr == nil {
				firstErr = err
			}
			w.bytes.Add(-s.size)
			continue
		}
		kept = append(kept, s)
	}
	w.sealed = kept
	return firstErr
}

// replay streams every record with sequence number > from, in order, to fn.
// It reads the segment files directly; call only while no appends are in
// flight (recovery) or after flushing.
func (w *wal) replay(from uint64, fn func(Record) error) error {
	w.mu.Lock()
	segs := append(append([]segment(nil), w.sealed...), w.active)
	if err := w.bw.Flush(); err != nil {
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	for _, seg := range segs {
		if w.appended.Load() < seg.first {
			continue // empty active segment
		}
		_, err := scanSegment(seg, func(rec Record) error {
			if rec.Seq <= from {
				return nil
			}
			return fn(rec)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// close flushes, syncs and closes the active segment.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.bw.Flush()
	if err == nil {
		err = w.f.Sync()
		w.fsyncs.Add(1)
		w.synced.Store(w.nextSeq - 1)
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// segments reports the number of live segment files.
func (w *wal) segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed) + 1
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
