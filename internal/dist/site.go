// Package dist implements the distributed company-control runtime of
// Section VII: worker sites that compute partial answers by reducing their
// partition (partial evaluation), and a coordinator that assembles the
// partial answers, reduces the merged graph, and produces the final answer.
// Query-independent partial answers can be pre-computed and cached, so that
// at query time at most the two sites storing s and t evaluate anything.
//
// Sites and coordinator can run in one process (LocalClient) or as separate
// processes speaking a gob protocol over TCP (Serve / Dial), with byte-level
// accounting of everything that crosses the wire.
package dist

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ccp/internal/control"
	"ccp/internal/datalog"
	"ccp/internal/graph"
	"ccp/internal/obs"
	"ccp/internal/obs/flight"
	"ccp/internal/partition"
	"ccp/internal/store"
)

// PartialAnswer is a site's reply to a posted query: either a decided global
// answer (a trusted termination condition fired locally) or the reduced
// partition to be merged at the coordinator.
type PartialAnswer struct {
	SiteID int
	// Ans is True/False if the site decided the query, Unknown otherwise.
	Ans control.Answer
	// Reduced is the reduced partition; nil when Ans is decided.
	Reduced *graph.Graph
	// Stats reports the local reduction work.
	Stats control.Stats
	// Elapsed is the site-side evaluation time.
	Elapsed time.Duration
	// FromCache reports that the answer came from the query-independent
	// cache rather than a live evaluation.
	FromCache bool
	// Epoch is the site's data version the answer was computed at; it
	// changes whenever the site's partition changes. Replica-aware routing
	// compares it against the leader's last commit to detect stale follower
	// answers.
	Epoch uint64
	// NotModified reports that the coordinator's copy (requested via
	// EvalOptions.IfEpoch) is still valid; Reduced is nil.
	NotModified bool
	// Spans are the site-local trace spans of a traced evaluation
	// (EvalOptions.TraceID != 0), with StartNS relative to the start of
	// this evaluation. The slice is pooled: whoever serializes or stitches
	// it releases it with obs.PutSpans.
	Spans []obs.Span

	// pool, when non-nil, owns Reduced: the graph is pooled scratch, valid
	// until Release. Cached partials (FromCache) are never pooled — their
	// graph is shared site state.
	pool *sync.Pool
}

// Release returns a pooled Reduced graph for reuse and clears the reference.
// Callers that consumed the partial (merged it, encoded it) should release
// it; forgetting to is safe — the graph is simply garbage collected. Release
// on a nil, unpooled, or already-released answer is a no-op.
func (pa *PartialAnswer) Release() {
	if pa == nil || pa.pool == nil || pa.Reduced == nil {
		return
	}
	pa.pool.Put(pa.Reduced)
	pa.Reduced = nil
	pa.pool = nil
}

// Site evaluates queries over one partition — the per-site half of
// Algorithm 2. A Site is safe for concurrent use.
//
// Concurrency model: s.mu guards the mutable partition state (Local, the
// boundary sets, the query-independent cache). The evaluation hot path never
// reduces under s.mu — it works off an immutable epoch-versioned snapshot
// (s.snap) that is rebuilt at most once per data epoch, so concurrent
// evaluations share one read-only copy instead of serializing on a
// per-query clone under the lock.
type Site struct {
	mu      sync.Mutex
	part    *partition.Partition
	workers int

	cache      *graph.Graph // query-independent reduction of the partition
	cacheStats control.Stats
	cacheEpoch uint64 // epoch the cache was computed at

	// epoch versions the site's data; every applied update bumps it (under
	// s.mu, but readable lock-free).
	epoch atomic.Uint64

	// snap is the current immutable evaluation snapshot; snapMu serializes
	// rebuilds so an epoch bump triggers one clone, not one per waiter.
	// pins counts in-flight evaluations holding a snapshot: copy-on-write
	// keeps a pinned snapshot valid for as long as the query needs it, no
	// matter how many updates land meanwhile.
	snap   atomic.Pointer[siteSnapshot]
	snapMu sync.Mutex
	pins   atomic.Int64

	// store, when non-nil, is the durable WAL + checkpoint backing: every
	// effective update is logged before it is acknowledged, and the epoch
	// is the WAL sequence number — a version that survives restarts.
	store *store.Store

	// readOnly marks a follower replica: state changes arrive only through
	// ApplyReplicated, and the direct mutation paths are refused so a
	// misrouted write cannot fork the replica from its leader.
	readOnly atomic.Bool

	// scratch pools per-evaluation graph copies; exclusions pools the
	// per-query exclusion sets. Both reach zero steady-state allocations.
	scratch    sync.Pool
	exclusions sync.Pool

	fullRescan bool

	// useDatalog enables the goal-directed Datalog evaluator as a local
	// decision procedure: before reducing, the site tries to derive
	// control(s,t) over its own partition. dlMu guards the per-epoch solver.
	useDatalog bool
	dlMu       sync.Mutex
	dlSolver   *datalog.CCPSolver
	dlEpoch    uint64

	met siteMetrics
	fr  *flight.Recorder
	log *slog.Logger
}

// siteSnapshot is one immutable copy-on-write view of the partition: the
// local graph plus the boundary sets, all taken atomically under s.mu at a
// single epoch. Readers treat every field as read-only; an update replaces
// the whole snapshot (on the next evaluation) rather than invalidating it in
// place.
type siteSnapshot struct {
	epoch    uint64
	local    *graph.Graph
	boundary graph.NodeSet // InNodes ∪ Virtual at snapshot time
	inNodes  graph.NodeSet // InNodes at snapshot time (T2 trust check)
}

// snapshot returns the current-epoch snapshot, building it if the data moved
// since the last one. The double-checked build keeps the hot path at two
// atomic loads.
func (s *Site) snapshot() *siteSnapshot {
	if sn := s.snap.Load(); sn != nil && sn.epoch == s.epoch.Load() {
		return sn
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if sn := s.snap.Load(); sn != nil && sn.epoch == s.epoch.Load() {
		return sn
	}
	s.mu.Lock()
	// Copy-on-write: the clone shares every adjacency map with the live
	// graph until one side mutates a node, so taking a snapshot costs
	// O(nodes) bookkeeping, not an O(nodes+edges) deep copy — updates no
	// longer throw away in-flight readers' work, they just diverge.
	sn := &siteSnapshot{
		epoch:    s.epoch.Load(),
		local:    s.part.Local.SnapshotClone(),
		boundary: s.part.Boundary(),
		inNodes:  graph.NewNodeSet(),
	}
	sn.inNodes.AddAll(s.part.InNodes)
	s.mu.Unlock()
	s.snap.Store(sn)
	return sn
}

// pin accounts an evaluation holding sn; the returned func releases the
// pin. Purely observational — COW keeps the snapshot consistent with or
// without it — but the gauge makes snapshot lifetimes visible.
func (s *Site) pin() func() {
	s.pins.Add(1)
	return func() { s.pins.Add(-1) }
}

// takeExclusion builds the per-query exclusion set {s, t} ∪ boundary in a
// pooled map.
func (s *Site) takeExclusion(boundary graph.NodeSet, q control.Query) graph.NodeSet {
	x, _ := s.exclusions.Get().(graph.NodeSet)
	if x == nil {
		x = graph.NewNodeSet()
	} else {
		clear(x)
	}
	x.AddAll(boundary)
	x.Add(q.S)
	x.Add(q.T)
	return x
}

func (s *Site) putExclusion(x graph.NodeSet) { s.exclusions.Put(x) }

// takeScratch borrows a pooled graph for a per-evaluation copy; may return
// nil, which CloneInto treats as "allocate fresh".
func (s *Site) takeScratch() *graph.Graph {
	g, _ := s.scratch.Get().(*graph.Graph)
	return g
}

// siteMetrics are the site's registered series — zero-valued (all nil) on
// an unobserved site, where every update is a nil-check no-op.
type siteMetrics struct {
	evalSeconds *obs.Histogram
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	robs        *obs.ReducerObs
}

// Observe registers the site's metrics — evaluation latency, cache
// hits/misses, reduction-engine telemetry — on o's registry, labeled with
// the partition id. Call once, before the site starts serving.
func (s *Site) Observe(o *obs.Observer) {
	reg := o.Registry()
	id := strconv.Itoa(s.part.ID)
	l := obs.Label{Key: "site", Value: id}
	s.met.evalSeconds = reg.Histogram("ccp_site_evaluate_seconds",
		"Site-side evaluation latency in seconds.", obs.DefaultLatencyBuckets, l)
	s.met.cacheHits = reg.Counter("ccp_site_cache_hits_total",
		"Evaluations served from the query-independent cache.", l)
	s.met.cacheMisses = reg.Counter("ccp_site_cache_misses_total",
		"Evaluations answered by a live reduction or local decision.", l)
	s.met.robs = obs.NewReducerObs(reg, "site-"+id)
	reg.GaugeFunc("ccp_site_snapshot_pins",
		"Evaluations currently holding the site's epoch snapshot.",
		func() float64 { return float64(s.pins.Load()) }, l)
	reg.GaugeFunc("ccp_site_epoch",
		"The site's data epoch (the durable WAL sequence number when a store is attached).",
		func() float64 { return float64(s.epoch.Load()) }, l)
	s.fr = o.Flight()
	if s.store != nil {
		s.store.Observe(o, s.part.ID)
	}
}

// SetLogger routes the site's structured diagnostics (and the reducer's
// debug summaries) to l. Call before the site starts serving; nil discards.
func (s *Site) SetLogger(l *slog.Logger) { s.log = obs.LoggerOr(l) }

// NewSite wraps a partition. workers <= 0 means GOMAXPROCS.
func NewSite(p *partition.Partition, workers int) *Site {
	return &Site{part: p, workers: workers, cacheEpoch: ^uint64(0), log: obs.Discard()}
}

// OpenDurableSite builds a site backed by the durable store in dir:
// recovery loads the newest valid checkpoint and replays the WAL tail
// through the normal mutation path, then the site starts logging every
// effective update and checkpointing in the background. On a fresh (or
// empty) directory the partition comes from seed — typically the
// partition file the deployment was provisioned with.
//
// After recovery the site's epoch is the durable WAL sequence number it had
// before the restart, so coordinator caches versioned by epoch vectors
// revalidate with NotModified instead of refetching whole partitions.
func OpenDurableSite(dir string, seed func() (*partition.Partition, error), workers int, opts store.Options) (*Site, error) {
	st, err := store.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	p, ckptSeq := st.Base()
	if p == nil {
		if p, err = seed(); err != nil {
			st.Close()
			return nil, err
		}
	}
	s := NewSite(p, workers)
	s.store = st
	// The epoch is the sequence number of the last record that changed
	// observable state — exactly what the live site would have had.
	// Reference-count-only records (and an image that includes them) may
	// push it past the pre-crash value; that only costs one spurious cache
	// refetch, it can never alias two different states to one number.
	epoch := ckptSeq
	if err := st.Replay(func(rec store.Record) error {
		changed, err := s.applyRecord(rec)
		if err != nil {
			return err
		}
		if changed {
			epoch = rec.Seq
		}
		return nil
	}); err != nil {
		st.Close()
		return nil, fmt.Errorf("dist: site %d replaying wal: %w", p.ID, err)
	}
	s.epoch.Store(epoch)
	st.Start(func() (uint64, *partition.Partition) {
		// The image must cover every record applied so far — including
		// count-only ticks past the epoch — or replay would double-apply
		// them; appends happen under s.mu, so AppendedSeq is exact here.
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.store.AppendedSeq(), s.part.Snapshot()
	})
	return s, nil
}

// applyRecord replays one WAL record through the same partition mutations
// the live update path uses, reporting whether observable state changed.
// Called during recovery, before the site serves.
func (s *Site) applyRecord(rec store.Record) (bool, error) {
	switch rec.Kind {
	case store.KindStake:
		res, err := s.part.ApplyStake(graph.NodeID(rec.Owner), graph.NodeID(rec.Owned), rec.Weight, rec.Remove)
		if err != nil {
			return false, err
		}
		return res.Changed, nil
	case store.KindCrossIn:
		_, changed := s.part.AdjustCrossIn(graph.NodeID(rec.Owned), int(rec.Delta))
		return changed, nil
	case store.KindMark:
		return true, nil
	}
	return false, fmt.Errorf("dist: unknown wal record kind %d", rec.Kind)
}

// SetReadOnly marks the site as a follower replica: ApplyEdgeUpdate and
// AdjustCrossIn are refused (writes belong on the leader), and state changes
// arrive only through ApplyReplicated.
func (s *Site) SetReadOnly(v bool) { s.readOnly.Store(v) }

// ReadOnly reports whether the site refuses direct writes.
func (s *Site) ReadOnly() bool { return s.readOnly.Load() }

// ApplyReplicated applies one WAL record shipped from this site's leader,
// through the same mutation path recovery replay uses. Records must arrive
// in sequence order. The epoch moves to the record's sequence number exactly
// when observable state changed — reproducing the leader's epoch assignment
// bit for bit, which is what makes follower answers interchangeable with the
// leader's (same fragment, same version number).
func (s *Site) ApplyReplicated(rec store.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed, err := s.applyRecord(rec)
	if err != nil {
		return fmt.Errorf("dist: site %d applying replicated record %d: %w", s.part.ID, rec.Seq, err)
	}
	if changed {
		s.cache = nil
		s.epoch.Store(rec.Seq)
	}
	return nil
}

// SeedEpoch initializes the site's epoch from a replication bootstrap image
// covering seq. Call once, before the site serves.
func (s *Site) SeedEpoch(seq uint64) { s.epoch.Store(seq) }

// ReplicationSnapshot captures a consistent bootstrap image for a follower:
// the partition serialized in CCPP1 format, plus the WAL sequence number it
// covers. Only sites with a durable store can be replicated from.
func (s *Site) ReplicationSnapshot() (uint64, []byte, error) {
	if s.store == nil {
		return 0, nil, &SiteError{SiteID: s.part.ID, Op: "repl-snapshot",
			Msg: "site has no durable store to replicate from"}
	}
	// Seq and image are captured atomically under s.mu (appends happen under
	// the same lock); serialization runs outside it — the COW snapshot stays
	// consistent no matter how many updates land meanwhile.
	s.mu.Lock()
	seq := s.store.AppendedSeq()
	img := s.part.Snapshot()
	s.mu.Unlock()
	var buf bytes.Buffer
	if err := img.WriteBinary(&buf); err != nil {
		return 0, nil, fmt.Errorf("dist: site %d serializing bootstrap image: %w", s.part.ID, err)
	}
	return seq, buf.Bytes(), nil
}

// ReadRecords returns up to max WAL records with sequence numbers strictly
// greater than from, for shipping to a follower. A *store.TruncatedError
// means checkpointing already deleted segments the follower needs — it must
// re-bootstrap from ReplicationSnapshot.
func (s *Site) ReadRecords(from uint64, max int) ([]store.Record, error) {
	if s.store == nil {
		return nil, &SiteError{SiteID: s.part.ID, Op: "repl-pull",
			Msg: "site has no durable store to replicate from"}
	}
	return s.store.ReadFrom(from, max)
}

// LeaderSeq returns the last WAL sequence number assigned by this site —
// the reference a follower's lag is measured against. Zero without a store.
func (s *Site) LeaderSeq() uint64 {
	if s.store == nil {
		return 0
	}
	return s.store.AppendedSeq()
}

// CloseStore checkpoints and closes the site's durable store — a clean
// shutdown, after which the next boot replays nothing. It is idempotent
// and a no-op for a site without a store. Callers drain queries first;
// updates arriving after the close fail rather than silently losing
// durability.
func (s *Site) CloseStore() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// Checkpoint forces a durable-store checkpoint immediately — sealing the
// active WAL segment and deleting segments the new checkpoint fully covers.
// A no-op for a site without a store. Tests and deployment tooling use it
// to bound the WAL tail on demand instead of waiting for the background
// triggers.
func (s *Site) Checkpoint() error {
	if s.store == nil {
		return nil
	}
	return s.store.Checkpoint()
}

// StoreStats returns the durable store's counters; ok is false for a site
// without a store.
func (s *Site) StoreStats() (store.Stats, bool) {
	if s.store == nil {
		return store.Stats{}, false
	}
	return s.store.Stats(), true
}

// Epoch returns the site's current data version (the durable WAL sequence
// number when a store is attached).
func (s *Site) Epoch() uint64 { return s.epoch.Load() }

// SetFullRescan selects the full-rescan reduction engine (ablation
// abl-frontier) for all subsequent evaluations of this site.
func (s *Site) SetFullRescan(v bool) { s.fullRescan = v }

// SetDatalogEvaluator enables (or disables) the planned Datalog engine as an
// alternative local evaluator. When the site stores the query source and its
// partition contains the target, it first runs a goal-directed control(s,t)
// derivation over the local graph; a positive local derivation is globally
// sound — the partition is a subgraph of the company graph and control is
// monotone under edge addition — so it is returned as a decided answer
// without reducing. A negative local derivation decides nothing (control may
// route through other partitions) and falls through to the partial path.
// Call before the site starts serving.
func (s *Site) SetDatalogEvaluator(v bool) { s.useDatalog = v }

// datalogSolver returns the per-epoch goal-directed solver over the site's
// snapshot, rebuilding it when the data moved. Solver queries are safe
// concurrently; only the rebuild is serialized.
func (s *Site) datalogSolver(sn *siteSnapshot) (*datalog.CCPSolver, error) {
	s.dlMu.Lock()
	defer s.dlMu.Unlock()
	if s.dlSolver != nil && s.dlEpoch == sn.epoch {
		return s.dlSolver, nil
	}
	solver, err := datalog.NewCCPSolver(sn.local)
	if err != nil {
		return nil, err
	}
	s.dlSolver, s.dlEpoch = solver, sn.epoch
	return solver, nil
}

// reduce runs a reduction with a pooled Reducer (the shared control-layer
// pool, so sites and the coordinator's batch workers draw from one scratch
// surface). A cancelled context stops the reduction at the next round
// boundary; the Reducer is returned to the pool either way (its next use
// resets all scratch state), so a cancelled query never poisons the site for
// the queries after it.
func (s *Site) reduce(ctx context.Context, g *graph.Graph, q control.Query, x graph.NodeSet, opt control.Options) (control.Result, error) {
	opt.FullRescan = s.fullRescan
	opt.Obs = s.met.robs
	opt.Logger = s.log
	r := control.GetReducer()
	res, err := r.Reduce(ctx, g, q, x, opt)
	control.PutReducer(r)
	return res, err
}

// ID returns the partition id this site serves.
func (s *Site) ID() int { return s.part.ID }

// Members returns the number of companies stored at the site.
func (s *Site) Members() int { return len(s.part.Members) }

// HoldsMember reports whether v is stored at this site (not just virtual).
func (s *Site) HoldsMember(v graph.NodeID) bool { return s.part.Members.Has(v) }

// Invalidate marks the site's data as changed, dropping the cached
// query-independent reduction. The evaluation snapshot is replaced lazily —
// the next evaluation sees the epoch moved and rebuilds. With a store
// attached the bump burns a real WAL sequence number (a mark record):
// epochs must stay unique per observable state across restarts, and a
// counter bump that is not in the log would be forgotten by recovery.
func (s *Site) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = nil
	if s.store != nil {
		if seq, err := s.store.Mark(); err == nil {
			s.epoch.Store(seq)
			return
		}
		s.log.Warn("invalidation mark not durable", "site", s.part.ID)
	}
	s.epoch.Add(1)
}

// Precompute builds (or refreshes) the query-independent reduction: the
// partition reduced with only the boundary nodes excluded. This is the
// offline work of Figure 6's cached sites. It returns the reduction stats.
// A cancelled or expired ctx aborts the build and leaves the cache
// untouched; the next Precompute starts over.
func (s *Site) Precompute(ctx context.Context) (control.Stats, error) {
	s.mu.Lock()
	epoch := s.epoch.Load()
	if s.cache != nil && s.cacheEpoch == epoch {
		st := s.cacheStats
		s.mu.Unlock()
		return st, nil
	}
	s.mu.Unlock()

	// Build from the epoch snapshot: the clone is private (the cache retains
	// it, so it cannot come from the scratch pool) and the snapshot's
	// boundary set is read-only to the reducer.
	sn := s.snapshot()
	g := sn.local.Clone()
	res, err := s.reduce(ctx, g, control.Query{S: graph.None, T: graph.None},
		sn.boundary, control.Options{
			Workers:            s.workers,
			DisableTermination: true, // there is no query yet
		})
	if err != nil {
		return control.Stats{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch.Load() == sn.epoch {
		s.cache = g
		s.cacheStats = res.Stats
		s.cacheEpoch = sn.epoch
	}
	return res.Stats, nil
}

// EvalOptions selects how a site evaluates a query.
type EvalOptions struct {
	// UseCache serves the query-independent cached reduction when neither
	// endpoint is stored at the site.
	UseCache bool
	// ForcePartial disables the early-termination answers, so the site
	// always returns its reduced partition. Measurement runs use it to
	// exercise the full assemble-and-merge pipeline on every query.
	ForcePartial bool
	// IfEpoch, when HasIfEpoch is set, asks the site to reply NotModified
	// instead of re-shipping its cached partial answer if the site's data
	// is still at that epoch — the conditional fetch behind the
	// coordinator-side cache of Figure 6.
	IfEpoch    uint64
	HasIfEpoch bool
	// TraceID, when non-zero, makes the site record spans for this
	// evaluation and return them in PartialAnswer.Spans. Zero (the
	// default) keeps the hot path span-free.
	TraceID uint64
	// FlightID correlates the site's flight-recorder events with the
	// coordinator's for this query. Unlike TraceID it is set on every query
	// (flight recording is always on and allocation-free), so it must not
	// enable span recording.
	FlightID uint64
}

// Evaluate computes the partial answer to q (Algorithm 2, line 6). With
// opts.UseCache set and neither endpoint stored here, the cached
// query-independent reduction is returned (computing it on demand).
// A cancelled or expired ctx stops the evaluation at the next reduction
// round and returns the context error; the site (and its pooled reducers)
// stay fully usable for subsequent queries.
func (s *Site) Evaluate(ctx context.Context, q control.Query, opts EvalOptions) (*PartialAnswer, error) {
	start := time.Now()
	holdsS := s.part.Members.Has(q.S)
	holdsT := s.part.Members.Has(q.T)

	if opts.UseCache && !holdsS && !holdsT {
		if _, err := s.Precompute(ctx); err != nil {
			return nil, err
		}
		s.mu.Lock()
		cached := s.cache
		st := s.cacheStats
		epoch := s.cacheEpoch
		s.mu.Unlock()
		if opts.HasIfEpoch && opts.IfEpoch == epoch {
			pa := &PartialAnswer{
				SiteID:      s.part.ID,
				Ans:         control.Unknown,
				Elapsed:     time.Since(start),
				FromCache:   true,
				Epoch:       epoch,
				NotModified: true,
			}
			s.observeEval(pa, opts, "site.revalidate", true)
			return pa, nil
		}
		pa := &PartialAnswer{
			SiteID:    s.part.ID,
			Ans:       control.Unknown,
			Reduced:   cached,
			Stats:     st,
			Elapsed:   time.Since(start),
			FromCache: true,
			Epoch:     epoch,
		}
		s.observeEval(pa, opts, "site.cache", true)
		return pa, nil
	}

	// Live evaluation, entirely off the immutable epoch snapshot: no lock is
	// held while classifying, cloning or reducing, so concurrent evaluations
	// never serialize on s.mu. The exclusion set is {s, t} ∪ V^in ∪ V^virt;
	// the early-termination conditions are trusted only where local knowledge
	// is complete (see control.TerminationTrust).
	sn := s.snapshot()
	defer s.pin()()
	trust := control.TerminationTrust{
		T1: holdsS,
		T2: holdsT && !sn.inNodes.Has(q.T),
	}
	if !opts.ForcePartial {
		// T1–T3 are O(1) on the cached aggregates and the reducer would
		// check them before doing any work anyway; deciding here skips the
		// partition copy entirely. Same trust, same answer, same (zero)
		// stats as the reducer's round-0 exit.
		if a := control.CheckTermination(sn.local, q, trust); a != control.Unknown {
			pa := &PartialAnswer{
				SiteID:  s.part.ID,
				Ans:     a,
				Elapsed: time.Since(start),
				Epoch:   sn.epoch,
			}
			s.observeEval(pa, opts, "site.decide", false)
			return pa, nil
		}
	}
	if s.useDatalog && !opts.ForcePartial && holdsS && sn.local.Alive(q.T) {
		// Goal-directed Datalog decision: derive control(s,t) over the local
		// graph only. Positive answers are globally sound (monotonicity); a
		// solver error or negative answer falls through to the reduce path.
		if solver, err := s.datalogSolver(sn); err == nil {
			if ok, derr := solver.Controls(q.S, q.T); derr == nil && ok {
				pa := &PartialAnswer{
					SiteID:  s.part.ID,
					Ans:     control.True,
					Elapsed: time.Since(start),
					Epoch:   sn.epoch,
				}
				s.observeEval(pa, opts, "site.datalog", false)
				return pa, nil
			}
		} else {
			s.log.Debug("datalog evaluator unavailable", "site", s.part.ID, "err", err)
		}
	}
	x := s.takeExclusion(sn.boundary, q)
	g := sn.local.CloneInto(s.takeScratch())
	var spans []obs.Span
	var reduceStart time.Time
	if opts.TraceID != 0 {
		reduceStart = time.Now()
		spans = append(obs.GetSpans(), obs.Span{
			Name:  "site.snapshot",
			Site:  int32(s.part.ID),
			DurNS: int64(reduceStart.Sub(start)),
		})
	}
	copts := control.Options{
		Workers: s.workers,
		Trust:   trust,
	}
	if opts.ForcePartial {
		copts.DisableTermination = true
	}
	res, err := s.reduce(ctx, g, q, x, copts)
	s.putExclusion(x)
	if err != nil {
		s.scratch.Put(g)
		obs.PutSpans(spans)
		return nil, err
	}
	pa := &PartialAnswer{
		SiteID:  s.part.ID,
		Ans:     res.Ans,
		Stats:   res.Stats,
		Elapsed: time.Since(start),
		Epoch:   sn.epoch,
	}
	if opts.ForcePartial {
		pa.Ans = control.Unknown
	}
	if pa.Ans == control.Unknown {
		pa.Reduced = g
		pa.pool = &s.scratch
	} else {
		s.scratch.Put(g)
	}
	if opts.TraceID != 0 {
		pa.Spans = append(spans, obs.Span{
			Name:    "site.reduce",
			Site:    int32(s.part.ID),
			StartNS: int64(reduceStart.Sub(start)),
			DurNS:   int64(time.Since(reduceStart)),
		})
	}
	s.met.cacheMisses.Inc()
	s.met.evalSeconds.Observe(pa.Elapsed.Seconds())
	s.fr.Record(flight.ReduceRound, int32(s.part.ID), opts.FlightID,
		int64(res.Stats.Iterations), int64(res.Stats.Removed+res.Stats.Contracted))
	s.fr.Record(flight.SiteEval, int32(s.part.ID), opts.FlightID, int64(pa.Elapsed), 0)
	return pa, nil
}

// observeEval stamps metrics and a flight event for a single-step
// evaluation outcome and, when traced, attaches a one-span trace covering
// the whole step.
func (s *Site) observeEval(pa *PartialAnswer, opts EvalOptions, span string, cacheHit bool) {
	if cacheHit {
		s.met.cacheHits.Inc()
	} else {
		s.met.cacheMisses.Inc()
	}
	s.met.evalSeconds.Observe(pa.Elapsed.Seconds())
	hitFlag := int64(0)
	if cacheHit {
		hitFlag = 1
	}
	s.fr.Record(flight.SiteEval, int32(pa.SiteID), opts.FlightID, int64(pa.Elapsed), hitFlag)
	if opts.TraceID != 0 {
		pa.Spans = append(obs.GetSpans(), obs.Span{
			Name:  span,
			Site:  int32(pa.SiteID),
			DurNS: int64(pa.Elapsed),
		})
	}
}
