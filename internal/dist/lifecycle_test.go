package dist

import (
	"context"
	"net"
	"testing"
	"time"

	"ccp/internal/control"
)

// TestStopAcceptingBeforeDrain exercises the two-phase decommission a
// replica goes through when it leaves the serving rotation: StopAccepting
// must refuse new connections (so routing health marks the member down)
// while connections already established keep answering queries, and only the
// later Shutdown drains and closes them.
func TestStopAcceptingBeforeDrain(t *testing.T) {
	p, err := durableSeed(7, 200, 0)()
	if err != nil {
		t.Fatalf("building partition: %v", err)
	}
	site := NewSite(p, 2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(site, ServerConfig{})
	go srv.Serve(ln)
	addr := ln.Addr().String()
	ctx := context.Background()

	eval := func(c *RemoteClient) error {
		pa, _, err := c.Evaluate(ctx, control.Query{S: 0, T: 2}, EvalOptions{ForcePartial: true})
		if err == nil {
			pa.Release()
		}
		return err
	}

	c1, err := Dial(ctx, addr)
	if err != nil {
		t.Fatalf("dial before StopAccepting: %v", err)
	}
	defer c1.Close()
	if err := eval(c1); err != nil {
		t.Fatalf("evaluate on fresh connection: %v", err)
	}

	srv.StopAccepting()

	// Out of rotation: a new dial must fail fast, not hang.
	dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	if c2, err := DialConfig(dctx, addr, ClientConfig{DialTimeout: 200 * time.Millisecond, MaxRetries: -1}); err == nil {
		c2.Close()
		cancel()
		t.Fatal("dial succeeded after StopAccepting — the replica never left rotation")
	}
	cancel()

	// Established connections are not cut off: the queries a client already
	// has in flight on them (and new ones it issues) still get answers.
	if err := eval(c1); err != nil {
		t.Fatalf("established connection stopped serving after StopAccepting: %v", err)
	}

	// Idempotent, and Shutdown still drains cleanly afterwards.
	srv.StopAccepting()
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown after StopAccepting: %v", err)
	}
	if err := eval(c1); err == nil {
		t.Fatal("evaluate succeeded after Shutdown — the connection was never drained and closed")
	}
}
