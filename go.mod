module ccp

go 1.22
