package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startTestOps spins up an ops server on a free port and tears it down with
// the test.
func startTestOps(t *testing.T, o *Observer, health HealthFunc) string {
	t.Helper()
	s, err := StartOps("127.0.0.1:0", o, health)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return "http://" + s.Addr()
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestOpsMetricsEndpoint(t *testing.T) {
	o := NewObserver(ObserverConfig{})
	o.Registry().Counter("ccp_queries_total", "Queries answered.").Add(5)
	o.Registry().Histogram("ccp_query_seconds", "Latency.", DefaultLatencyBuckets).Observe(0.002)
	base := startTestOps(t, o, nil)

	resp, body := get(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	checkPrometheusText(t, body)
	if !strings.Contains(body, "ccp_queries_total 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, `ccp_query_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("/metrics missing histogram buckets:\n%s", body)
	}
}

func TestOpsHealthzEndpoint(t *testing.T) {
	healthy := true
	base := startTestOps(t, NewObserver(ObserverConfig{}), func() (bool, any) {
		return healthy, map[string]int{"sites": 4}
	})

	resp, body := get(t, base+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy status = %d, want 200", resp.StatusCode)
	}
	var payload struct {
		Status string          `json:"status"`
		Detail json.RawMessage `json:"detail"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("healthz body not JSON: %v\n%s", err, body)
	}
	if payload.Status != "ok" || !strings.Contains(string(payload.Detail), `"sites":4`) {
		t.Errorf("unexpected healthz payload: %s", body)
	}

	healthy = false
	resp, body = get(t, base+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(body, `"degraded"`) {
		t.Errorf("degraded body: %s", body)
	}
}

func TestOpsVarzEndpoint(t *testing.T) {
	o := NewObserver(ObserverConfig{SlowQueryThreshold: time.Nanosecond})
	o.Registry().Gauge("ccp_inflight", "In flight.").Set(2)
	o.ObserveTrace(&Trace{TraceID: 7, Query: "controls(1,2)", DurNS: int64(time.Second)})
	base := startTestOps(t, o, nil)

	resp, body := get(t, base+"/varz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/varz status = %d", resp.StatusCode)
	}
	var payload struct {
		Metrics     []VarSnapshot `json:"metrics"`
		SlowQueries []*Trace      `json:"slow_queries"`
		SlowTotal   int64         `json:"slow_total"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("varz body not JSON: %v\n%s", err, body)
	}
	if len(payload.Metrics) != 1 || payload.Metrics[0].Name != "ccp_inflight" || payload.Metrics[0].Value != 2 {
		t.Errorf("unexpected varz metrics: %s", body)
	}
	if payload.SlowTotal != 1 || len(payload.SlowQueries) != 1 || payload.SlowQueries[0].TraceID != 7 {
		t.Errorf("unexpected varz slow log: %s", body)
	}
}

func TestOpsPprofEndpoint(t *testing.T) {
	base := startTestOps(t, nil, nil)
	resp, body := get(t, base+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index looks wrong: %.120s", body)
	}
}

func TestOpsBindFailureIsEager(t *testing.T) {
	s, err := StartOps("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	if _, err := StartOps(s.Addr(), nil, nil); err == nil {
		t.Fatal("binding an in-use address should fail at StartOps, not at first scrape")
	}
}
