// Group register scenario: derive the control-group register from a
// national ownership graph — which companies form groups, who heads them,
// and how concentrated control is. Central banks publish exactly this kind
// of data product from their company control computations (Section VIII-E).
package main

import (
	"fmt"

	"ccp"
)

func main() {
	fmt.Println("generating an Italian-style national graph...")
	g := ccp.GenerateItalian(ccp.ItalianConfig{Nodes: 150_000, Seed: 31})
	fmt.Printf("  %d companies, %d shareholdings\n\n", g.NumNodes(), g.NumEdges())

	groups := ccp.ControlGroups(g)
	fmt.Printf("group register: %d control groups with 2+ members\n", len(groups))
	fmt.Println("largest groups:")
	for _, gr := range groups[:10] {
		fmt.Printf("  head %-8d members %d\n", gr.Head, len(gr.Members))
	}

	rep := ccp.Dispersion(g)
	fmt.Printf("\ncontrol dispersion:\n")
	fmt.Printf("  companies in a group: %d of %d (%.1f%%)\n",
		rep.Grouped, rep.Companies, 100*float64(rep.Grouped)/float64(rep.Companies))
	fmt.Printf("  largest group:        %d companies\n", rep.LargestGroup)
	fmt.Printf("  top-10 groups hold:   %.1f%% of grouped companies\n",
		100*rep.TopShare[len(rep.TopShare)-1])
	fmt.Printf("  gini of group sizes:  %.2f\n", rep.Gini)

	// The full controlled set of the biggest head — beyond majority chains,
	// joint minority stakes widen the span of control.
	head := groups[0].Head
	full := ccp.ControlledSet(g, head)
	fmt.Printf("\nhead %d: %d companies by majority chains, %d including joint control\n",
		head, len(groups[0].Members), len(full))

	// Bulk data product: the controlled sets of the 50 largest heads.
	sources := make([]ccp.NodeID, 0, 50)
	for _, gr := range groups[:min(50, len(groups))] {
		sources = append(sources, gr.Head)
	}
	sets := ccp.ControlledSets(g, sources, 0)
	total := 0
	for _, s := range sets {
		total += len(s) - 1
	}
	fmt.Printf("top %d heads control %d companies in total\n", len(sources), total)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
