package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"ccp/internal/obs"
)

// varzDoc is the /varz payload shape (the slow-query fields are ignored).
type varzDoc struct {
	Metrics []obs.VarSnapshot `json:"metrics"`
}

// topSample is one endpoint's scraped state at one refresh.
type topSample struct {
	at   time.Time
	vars []obs.VarSnapshot
}

// sum totals a (possibly labeled) counter/gauge family.
func (s *topSample) sum(name string) (total float64, found bool) {
	for _, v := range s.vars {
		if v.Name == name && v.Hist == nil {
			total += v.Value
			found = true
		}
	}
	return total, found
}

// hist returns the first histogram of the family (the query-latency series
// is registered once, unlabeled).
func (s *topSample) hist(name string) *obs.HistogramSnapshot {
	for _, v := range s.vars {
		if v.Name == name && v.Hist != nil {
			return v.Hist
		}
	}
	return nil
}

// circuitCounts tallies the per-site circuit-state gauges by position.
func (s *topSample) circuitCounts() (closed, open, half int) {
	for _, v := range s.vars {
		if v.Name != "ccp_client_circuit_state" || v.Hist != nil {
			continue
		}
		switch v.Value {
		case 1:
			open++
		case 2:
			half++
		default:
			closed++
		}
	}
	return closed, open, half
}

// cmdTop is a refresh-loop terminal view of one or more running processes'
// ops endpoints: query throughput and latency quantiles, cache hit rates,
// circuit-breaker positions, and reduction-round rates, recomputed from
// /varz deltas every interval.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	opsList := fs.String("ops", "", "comma-separated ops addresses (host:port or URL) to poll")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	n := fs.Int("n", 0, "number of refreshes (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := splitList(*opsList)
	if len(addrs) == 0 {
		return fmt.Errorf("top: -ops is required")
	}
	client := &http.Client{Timeout: *interval}

	scrape := func(addr string) (*topSample, error) {
		url := addr
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		resp, err := client.Get(strings.TrimSuffix(url, "/") + "/varz")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s", resp.Status)
		}
		var doc varzDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			return nil, err
		}
		return &topSample{at: time.Now(), vars: doc.Metrics}, nil
	}

	prev := make(map[string]*topSample, len(addrs))
	for i := 0; *n <= 0 || i < *n; i++ {
		if i > 0 {
			time.Sleep(*interval)
			fmt.Print("\033[2J\033[H") // clear + home between refreshes
		}
		fmt.Printf("ccp top — %d endpoint(s), refresh %v, %s\n",
			len(addrs), *interval, time.Now().Format("15:04:05"))
		for _, addr := range addrs {
			cur, err := scrape(addr)
			if err != nil {
				fmt.Printf("\n== %s ==\n  unreachable: %v\n", addr, err)
				delete(prev, addr)
				continue
			}
			renderTop(os.Stdout, addr, cur, prev[addr])
			prev[addr] = cur
		}
	}
	return nil
}

// rate computes the per-second delta of a counter family between samples,
// or -1 when no previous sample exists.
func rate(cur, last *topSample, name string) float64 {
	if last == nil {
		return -1
	}
	dt := cur.at.Sub(last.at).Seconds()
	if dt <= 0 {
		return -1
	}
	a, _ := cur.sum(name)
	b, _ := last.sum(name)
	return (a - b) / dt
}

func fmtRate(r float64) string {
	if r < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f/s", r)
}

// hitRate renders hits/(hits+misses) as a percentage, or "-" when the
// series are absent or empty.
func hitRate(s *topSample, hitsName, missesName string) string {
	hits, ok1 := s.sum(hitsName)
	misses, ok2 := s.sum(missesName)
	if (!ok1 && !ok2) || hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%% (%0.f/%0.f)", 100*hits/(hits+misses), hits, hits+misses)
}

// renderTop prints one endpoint's section of the top view.
func renderTop(w *os.File, addr string, cur, last *topSample) {
	fmt.Fprintf(w, "\n== %s ==\n", addr)

	if q, ok := cur.sum("ccp_queries_total"); ok {
		fmt.Fprintf(w, "  queries   %8.0f total   %s\n", q, fmtRate(rate(cur, last, "ccp_queries_total")))
	}
	if h := cur.hist("ccp_query_seconds"); h != nil && h.Count > 0 {
		fmt.Fprintf(w, "  latency   p50=%v p95=%v p99=%v (n=%d)\n",
			time.Duration(h.Quantile(0.50)*float64(time.Second)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.95)*float64(time.Second)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)*float64(time.Second)).Round(time.Microsecond),
			h.Count)
	}
	if hr := hitRate(cur, "ccp_coord_cache_hits_total", "ccp_coord_cache_misses_total"); hr != "-" {
		fmt.Fprintf(w, "  coord-cache  %s hit\n", hr)
	}
	if hits, ok := cur.sum("ccp_site_cache_hits_total"); ok {
		fmt.Fprintf(w, "  site-cache   %8.0f hits   %s\n", hits, fmtRate(rate(cur, last, "ccp_site_cache_hits_total")))
	}
	if rounds, ok := cur.sum("ccp_reduce_rounds_total"); ok {
		fmt.Fprintf(w, "  reduce    %8.0f rounds  %s\n", rounds, fmtRate(rate(cur, last, "ccp_reduce_rounds_total")))
	}
	if reqs, ok := cur.sum("ccp_server_requests_total"); ok {
		fmt.Fprintf(w, "  served    %8.0f reqs    %s\n", reqs, fmtRate(rate(cur, last, "ccp_server_requests_total")))
	}
	closed, open, half := cur.circuitCounts()
	if closed+open+half > 0 {
		fmt.Fprintf(w, "  circuits  %d closed, %d open, %d half-open\n", closed, open, half)
	}
}
