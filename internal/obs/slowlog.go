package obs

import (
	"sync"
	"time"
)

// SlowLog is a bounded ring buffer of stitched traces whose end-to-end
// latency crossed a threshold. Recording copies the trace (callers pool
// theirs), overwriting the oldest entry once the ring is full, so memory is
// bounded no matter how bad a day the cluster is having. All methods are
// nil-safe.
type SlowLog struct {
	threshold time.Duration

	mu    sync.Mutex
	ring  []*Trace
	next  int   // ring index the next record lands in
	total int64 // lifetime recorded count (>= len(ring))
}

// NewSlowLog builds a slow-query log holding the last capacity traces over
// threshold.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &SlowLog{threshold: threshold, ring: make([]*Trace, 0, capacity)}
}

// Threshold returns the slow-query latency threshold (0 for a nil log).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record stores an owned copy of t if it is at or over threshold, reporting
// whether it did. The caller keeps ownership of t.
func (l *SlowLog) Record(t *Trace) bool {
	if l == nil || t == nil || time.Duration(t.DurNS) < l.threshold {
		return false
	}
	c := t.clone()
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, c)
	} else {
		l.ring[l.next] = c
	}
	l.next = (l.next + 1) % cap(l.ring)
	l.total++
	l.mu.Unlock()
	return true
}

// Len reports how many traces the log currently holds.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Total reports how many traces have ever been recorded (recorded-total
// minus capacity have been overwritten).
func (l *SlowLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the stored traces, newest first. The traces are the
// log's own copies; callers must not mutate them.
func (l *SlowLog) Snapshot() []*Trace {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Trace, 0, len(l.ring))
	for i := 1; i <= len(l.ring); i++ {
		out = append(out, l.ring[(l.next-i+cap(l.ring))%cap(l.ring)])
	}
	return out
}
