// Package experiments regenerates every figure and table of the paper's
// evaluation (Section VIII) on synthetic graphs: the distribution sweeps of
// Figure 8, the network-traffic table, the RIAD and serial-baseline
// comparisons, and the Neo4j-substitute path-enumeration runs of Figure 9.
//
// The paper ran on a 32-hyper-thread Xeon server with graphs of 4–40M
// edges; the default sizes here are scaled down (see Config.Scale) so a full
// sweep finishes in minutes on a laptop. The claims under reproduction are
// shapes — linearity, who wins, crossovers — not absolute seconds.
package experiments

import (
	"math/rand"
	"time"

	"ccp/internal/control"
	"ccp/internal/graph"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale multiplies every default graph size. 1.0 is the package
	// default (laptop-friendly); the paper's sizes correspond to roughly
	// Scale 100.
	Scale float64
	// Seed makes runs deterministic.
	Seed int64
	// Workers bounds intra-site parallelism (0 = GOMAXPROCS).
	Workers int
	// Repeats averages each timed point over this many runs (default 1).
	Repeats int
	// Concurrency is the number of batch queries the throughput experiment
	// keeps in flight at once (<= 1 = serial, the pre-batch behavior).
	Concurrency int
	// PathBudget bounds each Figure 9 path-enumeration run (default
	// DefaultPathBudget); crossing it marks the point DNF.
	PathBudget time.Duration
	// FullRescan runs every reduction with the full-rescan engine instead of
	// the frontier engine (ablation abl-frontier; ccpbench -full-rescan).
	FullRescan bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Repeats <= 0 {
		c.Repeats = 1
	}
	if c.PathBudget <= 0 {
		c.PathBudget = DefaultPathBudget
	}
	return c
}

func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 16 {
		v = 16
	}
	return v
}

// timeIt runs fn repeats times and returns the average duration.
func timeIt(repeats int, fn func()) time.Duration {
	var total time.Duration
	for i := 0; i < repeats; i++ {
		start := time.Now()
		fn()
		total += time.Since(start)
	}
	return total / time.Duration(repeats)
}

// pickQuery chooses a non-trivial query on g: a source with controlling
// stakes (so T1 does not fire immediately) and a controllable target (so T2
// does not fire), preferring endpoints far apart in the id space.
func pickQuery(g *graph.Graph, rng *rand.Rand) control.Query {
	n := g.Cap()
	pick := func(pred func(graph.NodeID) bool, fallbackLow bool) graph.NodeID {
		for attempt := 0; attempt < 200; attempt++ {
			var v graph.NodeID
			if fallbackLow {
				v = graph.NodeID(rng.Intn(n/4 + 1))
			} else {
				v = graph.NodeID(n - 1 - rng.Intn(n/4+1))
			}
			if g.Alive(v) && pred(v) {
				return v
			}
		}
		return graph.NodeID(rng.Intn(n))
	}
	s := pick(func(v graph.NodeID) bool {
		ok := false
		g.EachOut(v, func(u graph.NodeID, w float64) {
			if graph.ExceedsControl(w) {
				ok = true
			}
		})
		return ok
	}, true)
	t := pick(func(v graph.NodeID) bool {
		return graph.ExceedsControl(g.InSum(v))
	}, false)
	return control.Query{S: s, T: t}
}

// pickHubQuery chooses a supervision-style query: the source is the largest
// shareholder of the graph (the kind of holding company a central bank asks
// about, whose controlled set is big), the target a controllable company far
// from it in the id space.
func pickHubQuery(g *graph.Graph, rng *rand.Rand) control.Query {
	n := g.Cap()
	best, bestDeg := graph.NodeID(0), -1
	g.EachNode(func(v graph.NodeID) {
		if d := g.OutDegree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	})
	for attempt := 0; attempt < 200; attempt++ {
		t := graph.NodeID(n - 1 - rng.Intn(n/4+1))
		if g.Alive(t) && t != best && graph.ExceedsControl(g.InSum(t)) {
			return control.Query{S: best, T: t}
		}
	}
	return control.Query{S: best, T: graph.NodeID(rng.Intn(n))}
}
