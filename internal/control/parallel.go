package control

import (
	"context"
	"log/slog"
	"sync"

	"ccp/internal/graph"
	"ccp/internal/obs"
	"ccp/internal/par"
)

// Options configures ParallelReduction.
type Options struct {
	// Workers is the intra-site parallelism degree; <= 0 means GOMAXPROCS.
	Workers int

	// Trust gates the early-termination conditions (see TerminationTrust).
	Trust TerminationTrust

	// TwoPhaseOnly reproduces the paper's procedure literally: Phase 1
	// (R1/R2) runs to exhaustion, then Phase 2 (R3) runs to exhaustion, and
	// the algorithm stops — even if contraction re-created C1/C2 nodes.
	// The default (false) loops back to Phase 1 until no rule applies,
	// which yields the smallest control-equivalent graph.
	TwoPhaseOnly bool

	// DisableTermination skips the T1–T3 early-exit checks (ablation
	// abl-term). The final answer is still derived after full reduction.
	DisableTermination bool

	// NaiveContraction contracts only C3 nodes whose direct controller is
	// not itself C3, one layer per round, instead of resolving controller
	// chains and cycles to representatives (ablation abl-repr).
	NaiveContraction bool

	// FullRescan disables the frontier engine and re-marks all nodes every
	// round, re-tallying classes with a full scan — the literal procedure of
	// Section VI (ablation abl-frontier). Answers, reduced graphs and
	// statistics are identical either way; only the per-round cost differs.
	FullRescan bool

	// Meter, when non-nil, records the critical path of every parallel
	// step, letting par.Meter.SimulatedElapsed estimate the wall clock of
	// the same run on a machine with one core per worker.
	Meter *par.Meter

	// Obs, when non-nil, streams reduction telemetry — rounds, nodes
	// removed by R1/R2, nodes contracted by R3, frontier widths — into an
	// obs metrics registry. Nil costs one pointer check per round.
	Obs *obs.ReducerObs

	// Logger, when non-nil and debug-enabled, receives a one-line summary
	// per reduction (answer, rounds, removals, contractions). Nil or a
	// higher level costs one Enabled check per reduction.
	Logger *slog.Logger
}

// Result is the outcome of ParallelReduction: the answer to q_c(s, t) if the
// reduction could decide it (Unknown otherwise, possible only when the
// exclusion set contains boundary nodes), the reduced graph, and statistics.
type Result struct {
	Ans          Answer
	Reduced      *graph.Graph
	Stats        Stats
	Phase1Rounds int
	Phase2Rounds int
}

// reducerPool recycles Reducers across ParallelReduction calls so the
// convenience entry point shares the zero-steady-state-allocation property
// of an explicitly reused Reducer.
var reducerPool = sync.Pool{New: func() any { return NewReducer() }}

// GetReducer borrows a Reducer from the shared pool. It is the scratch
// surface for callers that interleave reduction with other work (the dist
// coordinator's batch workers): borrow, Reduce any number of times, then
// PutReducer. A borrowed Reducer must not be shared across goroutines.
func GetReducer() *Reducer { return reducerPool.Get().(*Reducer) }

// PutReducer returns a Reducer borrowed with GetReducer to the shared pool.
func PutReducer(r *Reducer) {
	if r != nil {
		reducerPool.Put(r)
	}
}

// ParallelReduction is the procedure parallelReduction of Section VI: it
// reduces g in place with respect to query q, never removing nodes of the
// exclusion set x, using parallel mark / clean / simplify steps.
//
// Phase 1 repeatedly marks and removes every C1/C2 node in parallel. Phase 2
// repeatedly marks and contracts all C3 nodes in parallel: every
// directly-controlled node is resolved — following chains of direct
// controllers, collapsing pure C3 cycles onto their minimum-id member — to
// the representative that ends up owning its outgoing edges, and all
// transfers are executed by id-sharded workers.
//
// Marking after round 1 is incremental: only nodes whose adjacency changed
// are re-classified (see Reducer). Set opt.FullRescan for the literal
// mark-everything procedure. This wrapper borrows a pooled Reducer; callers
// with a natural place to keep one (e.g. dist.Site) can hold their own and
// call Reduce directly.
//
// ctx is checked between reduction rounds: a cancelled or expired context
// stops the reduction promptly and returns ctx.Err() (the graph is left
// partially reduced, the pooled Reducer stays reusable). The returned error
// is nil whenever the reduction ran to its natural end.
func ParallelReduction(ctx context.Context, g *graph.Graph, q Query, x graph.NodeSet, opt Options) (Result, error) {
	r := reducerPool.Get().(*Reducer)
	res, err := r.Reduce(ctx, g, q, x, opt)
	reducerPool.Put(r)
	return res, err
}

// fullRescanReduction is the pre-frontier engine, kept verbatim as the
// abl-frontier ablation baseline: every round re-marks all of the id space
// and re-tallies classes with a full parallel scan.
func fullRescanReduction(ctx context.Context, g *graph.Graph, q Query, x graph.NodeSet, opt Options) (Result, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	res := Result{Ans: Unknown, Reduced: g}

	check := func() bool {
		if opt.DisableTermination {
			return false
		}
		if a := CheckTermination(g, q, opt.Trust); a != Unknown {
			res.Ans = a
			return true
		}
		return false
	}
	if check() {
		return res, nil
	}

	n := g.Cap()
	labels := make([]graph.Class, n)
	excluded := make([]bool, n)
	for v := range x {
		if int(v) < n {
			excluded[v] = true
		}
	}
	mark := func() {
		par.MeteredFor(opt.Meter, n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := graph.NodeID(i)
				if !g.Alive(v) {
					labels[i] = graph.C1
					continue
				}
				labels[i] = g.ClassOf(v, excluded[i])
			}
		})
	}
	// countClasses tallies live nodes per class in parallel.
	countClasses := func() (c12, c3 int) {
		type tally struct{ c12, c3 int }
		parts := make([]tally, par.Blocks(n, workers))
		par.MeteredForBlocks(opt.Meter, n, workers, func(b, lo, hi int) {
			var t tally
			for i := lo; i < hi; i++ {
				if !g.Alive(graph.NodeID(i)) {
					continue
				}
				switch labels[i] {
				case graph.C1, graph.C2:
					t.c12++
				case graph.C3:
					t.c3++
				}
			}
			parts[b] = t
		})
		for _, t := range parts {
			c12 += t.c12
			c3 += t.c3
		}
		return c12, c3
	}

	phase := 1
	dead := make([]bool, n)
	for {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		mark()
		if check() {
			return res, nil
		}
		c12, c3 := countClasses()

		if phase == 1 {
			if c12 == 0 {
				phase = 2
			} else {
				// clean: remove all C1/C2 nodes in parallel.
				par.MeteredFor(opt.Meter, n, workers, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						dead[i] = g.Alive(graph.NodeID(i)) &&
							(labels[i] == graph.C1 || labels[i] == graph.C2)
					}
				})
				removed := g.ParallelRemoveMetered(opt.Meter, dead, workers)
				if opt.Obs != nil {
					r1 := 0
					for i, d := range dead {
						if d && labels[i] == graph.C1 {
							r1++
						}
					}
					opt.Obs.RemoveRound(r1, removed-r1, c12)
				}
				res.Stats.Removed += removed
				res.Stats.Iterations++
				res.Phase1Rounds++
				continue
			}
		}

		// Phase 2.
		if c3 == 0 {
			if !opt.TwoPhaseOnly && c12 > 0 {
				phase = 1
				continue
			}
			break
		}
		rep := resolveRepresentatives(g, labels, opt.NaiveContraction)
		contracted := g.ParallelContractMetered(opt.Meter, rep, workers)
		opt.Obs.ContractRound(contracted, c3)
		res.Stats.Contracted += contracted
		res.Stats.Iterations++
		res.Phase2Rounds++
	}

	// Reduction is exhausted; the termination conditions now decide the
	// query whenever the exclusion set is just {s, t} (see Section VI: after
	// Phase 2, T1 ∨ T3 always fires in the centralized setting).
	res.Ans = CheckTermination(g, q, opt.Trust)
	return res, nil
}

// resolveRepresentatives computes, for every C3 node, the node that will
// absorb its outgoing edges under exhaustive application of R3:
// the first non-C3 node reached by following direct controllers, or — for
// chains ending in a cycle made entirely of C3 nodes — the minimum-id member
// of that cycle, which survives the round (rep[v] == v) exactly as it would
// survive sequential application of R3 to every other cycle member.
//
// If naive is set, only C3 nodes whose direct controller is not itself C3
// are contracted (one chain layer per round).
func resolveRepresentatives(g *graph.Graph, labels []graph.Class, naive bool) []graph.NodeID {
	n := g.Cap()
	rep := make([]graph.NodeID, n)
	for i := range rep {
		rep[i] = graph.None
	}
	if naive {
		for i := 0; i < n; i++ {
			v := graph.NodeID(i)
			if labels[i] != graph.C3 || !g.Alive(v) {
				continue
			}
			wdc := g.DirectController(v)
			if wdc != graph.None && labels[wdc] != graph.C3 {
				rep[i] = wdc
			}
		}
		ensureProgress(g, labels, rep)
		return rep
	}

	const (
		unvisited = 0
		inWalk    = 1
		done      = 2
	)
	state := make([]uint8, n)
	var walk []graph.NodeID
	for i := 0; i < n; i++ {
		if labels[i] != graph.C3 || state[i] != unvisited || !g.Alive(graph.NodeID(i)) {
			continue
		}
		walk = walk[:0]
		u := graph.NodeID(i)
		var root graph.NodeID
		for {
			if labels[u] != graph.C3 {
				root = u
				break
			}
			if state[u] == done {
				root = rep[u]
				break
			}
			if state[u] == inWalk {
				// u closes a cycle of directly-controlled nodes; collapse it
				// onto its minimum-id member.
				k := 0
				for walk[k] != u {
					k++
				}
				root = u
				for _, c := range walk[k:] {
					if c < root {
						root = c
					}
				}
				break
			}
			state[u] = inWalk
			walk = append(walk, u)
			u = g.DirectController(u)
		}
		for _, w := range walk {
			state[w] = done
			rep[w] = root
		}
		if int(root) < n && labels[root] == graph.C3 {
			// root is the surviving member of a C3 cycle.
			rep[root] = root
			state[root] = done
		}
	}
	return rep
}

// ensureProgress guarantees that a naive-contraction round contracts at
// least one node even when every C3 node's controller is C3 (i.e. the C3
// nodes form only cycles): it contracts one non-minimal member of one cycle,
// mirroring a single sequential R3 application.
func ensureProgress(g *graph.Graph, labels []graph.Class, rep []graph.NodeID) {
	for i := range rep {
		if rep[i] != graph.None && rep[i] != graph.NodeID(i) {
			return // some contraction already scheduled
		}
	}
	for i := range labels {
		v := graph.NodeID(i)
		if labels[i] != graph.C3 || !g.Alive(v) {
			continue
		}
		wdc := g.DirectController(v)
		if wdc == graph.None {
			continue
		}
		// Contract v into wdc; wdc survives this round because nothing else
		// is scheduled.
		rep[i] = wdc
		if int(wdc) < len(rep) {
			rep[wdc] = graph.None
		}
		return
	}
}
