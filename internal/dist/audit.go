package dist

import (
	"strconv"

	"ccp/internal/obs"
	"ccp/internal/obs/audit"
)

// observeCache exports the coordinator's per-site cached-partial epochs as
// ccp_coord_cached_epoch{site} gauges (0 = no cached copy). `ccpctl doctor`
// cross-checks them against the serving sites' ccp_site_epoch: a cached
// epoch ahead of its site's is a partial answer from a future that never
// happened — corruption no single process can see alone.
func (c *Coordinator) observeCache(o *obs.Observer) {
	reg := o.Registry()
	if reg == nil {
		return
	}
	for siteID, slot := range c.slots {
		slot := slot
		reg.GaugeFunc("ccp_coord_cached_epoch",
			"Epoch of the coordinator's cached partial answer for the site (0 = none cached).",
			func() float64 {
				if e := c.pcache[slot].Load(); e != nil {
					return float64(e.epoch)
				}
				return 0
			}, obs.Label{Key: "site", Value: strconv.Itoa(siteID)})
	}
}

// ConservationProbe returns the coordinator's audit probe over the
// snapshot-cache conservation law: every query that reaches the merge path
// is exactly one of snapshot hit, build, or miss, so
// hits + builds + misses == merged must hold. The per-query deltas are
// published one counter at a time after each query, so the probe judges
// only via audit.CheckStable — a mismatch that persists while the counters
// are quiescent is lost accounting (a worker dropped or double-counted a
// query), a moving one is a query mid-publish.
func (c *Coordinator) ConservationProbe() audit.Probe {
	return audit.Probe{
		Name: "coord.conservation",
		Check: func() audit.Result {
			return audit.CheckStable(0, func() ([]int64, audit.Result) {
				hits := c.met.snapshotHits.Value()
				builds := c.met.snapshotBuilds.Value()
				misses := c.met.snapshotMisses.Value()
				merged := c.met.mergedQueries.Value()
				vals := []int64{hits, builds, misses, merged}
				if hits+builds+misses != merged {
					return vals, audit.Violation(
						"snapshot hits %d + builds %d + misses %d != merged queries %d",
						hits, builds, misses, merged)
				}
				return vals, audit.OK("hits %d + builds %d + misses %d = merged %d",
					hits, builds, misses, merged)
			})
		},
	}
}

// StoreScrubProbe returns a durable site's audit probe: one bounded Scrub
// pass (sampled CRC re-verification of WAL segments and checkpoints on the
// live data-dir) per evaluation. Returns a no-op passing probe for a
// memory-only site.
func (s *Site) StoreScrubProbe(maxSegments int) audit.Probe {
	return audit.Probe{
		Name: "store.scrub",
		Check: func() audit.Result {
			if s.store == nil {
				return audit.OK("memory-only site, nothing to scrub")
			}
			res := s.store.Scrub(maxSegments)
			if !res.OK() {
				return audit.Violation("%s", res.Summary())
			}
			return audit.OK("%s", res.Summary())
		},
	}
}
