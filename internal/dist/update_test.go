package dist

import (
	"context"
	"math/rand"
	"net"
	"testing"

	"ccp/internal/control"
	"ccp/internal/gen"
	"ccp/internal/graph"
	"ccp/internal/partition"
)

// updateCluster builds a 2-partition in-process cluster over a small graph
// and returns the coordinator plus a mirror graph that tracks the expected
// centralized state.
func updateCluster(t *testing.T, useCache bool) (*Coordinator, []*Site, *graph.Graph) {
	t.Helper()
	g := graph.New(6)
	for _, e := range []graph.Edge{
		{From: 0, To: 1, Weight: 0.6},
		{From: 3, To: 4, Weight: 0.6},
	} {
		if err := g.AddEdge(e.From, e.To, e.Weight); err != nil {
			t.Fatal(err)
		}
	}
	pi, err := partition.Split(g, []int{0, 0, 0, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sites := make([]*Site, 2)
	clients := make([]SiteClient, 2)
	for i, p := range pi.Parts {
		sites[i] = NewSite(p, 1)
		clients[i] = &LocalClient{Site: sites[i]}
	}
	return NewCoordinator(clients, Options{UseCache: useCache, Workers: 1}), sites, g
}

func TestApplyUpdateInternalEdge(t *testing.T) {
	coord, _, mirror := updateCluster(t, false)
	// 1 takes 70% of 2 (same partition): 0 now controls 2 transitively.
	if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: 1, Owned: 2, Weight: 0.7}); err != nil {
		t.Fatal(err)
	}
	if err := mirror.AddEdge(1, 2, 0.7); err != nil {
		t.Fatal(err)
	}
	for _, q := range []control.Query{{S: 0, T: 2}, {S: 1, T: 2}, {S: 0, T: 4}} {
		want := control.CBE(mirror, q)
		got, _, err := coord.Answer(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v after update: got %v, want %v", q, got, want)
		}
	}
}

func TestApplyUpdateCrossEdgeAndRemove(t *testing.T) {
	coord, sites, mirror := updateCluster(t, true)
	if err := coord.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	// 1 (partition 0) takes 80% of 3 (partition 1): a cross edge. Node 3
	// must become an in-node of partition 1, and 0 now controls 4.
	if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: 1, Owned: 3, Weight: 0.8}); err != nil {
		t.Fatal(err)
	}
	if err := mirror.AddEdge(1, 3, 0.8); err != nil {
		t.Fatal(err)
	}
	if !sites[1].part.InNodes.Has(3) {
		t.Fatal("in-node bookkeeping not updated")
	}
	if sites[0].part.CrossOut != 1 || !sites[0].part.Virtual.Has(3) {
		t.Fatal("owner-side cross bookkeeping not updated")
	}
	for _, q := range []control.Query{{S: 0, T: 4}, {S: 1, T: 4}, {S: 0, T: 3}} {
		want := control.CBE(mirror, q)
		got, _, err := coord.Answer(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v after cross update: got %v, want %v", q, got, want)
		}
	}
	// Divest: everything reverts.
	if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: 1, Owned: 3, Remove: true}); err != nil {
		t.Fatal(err)
	}
	mirror.RemoveEdge(1, 3)
	if sites[1].part.InNodes.Has(3) {
		t.Fatal("in-node not dropped after divestment")
	}
	if sites[0].part.CrossOut != 0 {
		t.Fatalf("cross-out = %d after divestment", sites[0].part.CrossOut)
	}
	got, _, err := coord.Answer(context.Background(), control.Query{S: 0, T: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != control.CBE(mirror, control.Query{S: 0, T: 4}) {
		t.Fatal("answer did not revert after divestment")
	}
}

func TestApplyUpdateMergeDoesNotDoubleCountInNode(t *testing.T) {
	coord, sites, _ := updateCluster(t, false)
	// Two increments of the same cross stake: only one in-node reference.
	if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: 1, Owned: 3, Weight: 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: 1, Owned: 3, Weight: 0.2}); err != nil {
		t.Fatal(err)
	}
	if sites[1].part.CrossIn[3] != 1 {
		t.Fatalf("cross-in refcount = %d, want 1", sites[1].part.CrossIn[3])
	}
	// One divestment clears it.
	if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: 1, Owned: 3, Remove: true}); err != nil {
		t.Fatal(err)
	}
	if sites[1].part.InNodes.Has(3) {
		t.Fatal("in-node survived divestment")
	}
}

func TestApplyUpdateErrors(t *testing.T) {
	coord, _, _ := updateCluster(t, false)
	if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: 99, Owned: 1, Weight: 0.2}); err == nil {
		t.Fatal("unknown owner accepted")
	}
	if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: 0, Owned: 1, Remove: true, Weight: 0}); err != nil {
		t.Fatal(err) // removing an existing stake is fine
	}
	if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: 0, Owned: 1, Remove: true}); err == nil {
		t.Fatal("removing a missing stake accepted")
	}
	if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: 0, Owned: 2, Weight: 1.5}); err == nil {
		t.Fatal("out-of-range stake accepted")
	}
	if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: 0, Owned: 0, Weight: 0.2}); err == nil {
		t.Fatal("self stake accepted")
	}
}

func TestUpdatesOverTCP(t *testing.T) {
	g := gen.EU(gen.EUConfig{Countries: 2, NodesPerCountry: 500, InterconnectRate: 0, Seed: 5}).G
	pi, err := partition.ByContiguous(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]SiteClient, 2)
	for i, p := range pi.Parts {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go Serve(context.Background(), l, NewSite(p, 1))
		c, err := Dial(context.Background(), l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	coord := NewCoordinator(clients, Options{UseCache: true, Workers: 1})
	mirror := g.Clone()

	// Find an uncontrolled company in country 1 and take it over from
	// country 0, across the wire.
	var target graph.NodeID = graph.None
	for v := graph.NodeID(500); v < 1000; v++ {
		if mirror.InSum(v) < 0.3 {
			target = v
			break
		}
	}
	if target == graph.None {
		t.Skip("no takeover candidate")
	}
	if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: 7, Owned: target, Weight: 0.65}); err != nil {
		t.Fatal(err)
	}
	if err := mirror.AddEdge(7, target, 0.65); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 6; i++ {
		q := control.Query{S: 7, T: target}
		if i > 0 {
			q = control.Query{S: graph.NodeID(rng.Intn(1000)), T: graph.NodeID(rng.Intn(1000))}
		}
		want := control.CBE(mirror, q)
		got, _, err := coord.Answer(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v over TCP after update: got %v want %v", q, got, want)
		}
	}
}

func TestAnswerBatch(t *testing.T) {
	g := gen.ScaleFree(gen.ScaleFreeConfig{Nodes: 2000, AvgOutDegree: 2, Seed: 31})
	pi, err := partition.ByContiguous(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]SiteClient, 3)
	for i, p := range pi.Parts {
		clients[i] = &LocalClient{Site: NewSite(p, 1), MeasureBytes: true}
	}
	coord := NewCoordinator(clients, Options{UseCache: true, Workers: 1})
	if err := coord.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	var qs []control.Query
	var want []bool
	for i := 0; i < 20; i++ {
		q := control.Query{S: graph.NodeID(rng.Intn(2000)), T: graph.NodeID(rng.Intn(2000))}
		qs = append(qs, q)
		want = append(want, control.CBE(g, q))
	}
	got, m, err := coord.AnswerBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch query %d: got %v want %v", i, got[i], want[i])
		}
	}
	if m.SitesQueried != 20*3 {
		t.Fatalf("sites queried = %d", m.SitesQueried)
	}
}

func TestCoordinatorCacheRevalidation(t *testing.T) {
	g := gen.ScaleFree(gen.ScaleFreeConfig{Nodes: 3000, AvgOutDegree: 2, Seed: 45})
	pi, err := partition.ByContiguous(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	sites := make([]*Site, 3)
	clients := make([]SiteClient, 3)
	for i, p := range pi.Parts {
		sites[i] = NewSite(p, 1)
		clients[i] = &LocalClient{Site: sites[i], MeasureBytes: true}
	}
	coord := NewCoordinator(clients, Options{UseCache: true, Workers: 1})
	if err := coord.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Endpoints in partitions 0 and 2: site 1 serves from cache.
	q := control.Query{S: 5, T: graph.NodeID(g.Cap() - 5)}
	want := control.CBE(g, q)

	got1, m1, err := coord.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got1 != want {
		t.Fatalf("first answer %v, want %v", got1, want)
	}
	if m1.CacheHits != 1 || m1.CoordCacheHits != 0 {
		t.Fatalf("first query: cacheHits=%d coordHits=%d", m1.CacheHits, m1.CoordCacheHits)
	}

	// Second query: the coordinator revalidates by epoch; site 1 replies
	// not-modified and ships nothing.
	got2, m2, err := coord.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want || m2.CoordCacheHits != 1 {
		t.Fatalf("second query: got=%v coordHits=%d", got2, m2.CoordCacheHits)
	}
	if m2.Bytes >= m1.Bytes {
		t.Fatalf("revalidated query shipped %dB, first shipped %dB", m2.Bytes, m1.Bytes)
	}

	// An update to site 1 bumps its epoch: the copy is refetched and
	// answers stay correct.
	mid := graph.NodeID(1000 + 1) // a member of partition 1
	if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: mid, Owned: mid + 1, Weight: 0.05}); err != nil {
		t.Fatal(err)
	}
	got3, m3, err := coord.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got3 != control.CBE(pi.Merge(), q) {
		t.Fatalf("post-update answer wrong")
	}
	if m3.CoordCacheHits != 0 {
		t.Fatalf("stale coordinator copy served after update: %+v", m3)
	}
	// And the fourth query revalidates again.
	_, m4, err := coord.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if m4.CoordCacheHits != 1 {
		t.Fatalf("revalidation broken after refetch: %+v", m4)
	}
}
