package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ccp/internal/control"
	"ccp/internal/graph"
	"ccp/internal/obs"
)

func durationNS(ns int64) time.Duration { return time.Duration(ns) }

// The wire protocol: a client sends requests and reads responses over one
// connection, both gob-encoded. Requests carry a client-chosen ID that the
// site echoes in the response, so one connection multiplexes any number of
// concurrent calls; responses may arrive in any order. Graphs travel as the
// compact CCPG1 binary format produced by graph.WriteBinary, so wire size
// equals what the network-traffic table reports.

// op selects the request kind.
type op uint8

const (
	opEvaluate op = iota + 1
	opPrecompute
	opInfo
	opUpdate
	opCrossIn
	// opReplSnapshot fetches a consistent (seq, partition image) pair for
	// follower bootstrap; opReplPull fetches a batch of WAL records past a
	// sequence number. Both are served only by sites with a durable store.
	opReplSnapshot
	opReplPull
)

// opName names an op for error reporting.
func opName(o op) string {
	switch o {
	case opEvaluate:
		return "evaluate"
	case opPrecompute:
		return "precompute"
	case opInfo:
		return "info"
	case opUpdate:
		return "update"
	case opCrossIn:
		return "cross-in"
	case opReplSnapshot:
		return "repl-snapshot"
	case opReplPull:
		return "repl-pull"
	default:
		return fmt.Sprintf("op%d", o)
	}
}

// request is the client -> site message.
type request struct {
	// ID tags the request; the site echoes it in the response so concurrent
	// calls can share one connection.
	ID           uint64
	Op           op
	S, T         int32
	UseCache     bool
	ForcePartial bool
	// IfEpoch/HasIfEpoch carry the coordinator's conditional-fetch epoch.
	IfEpoch    uint64
	HasIfEpoch bool
	// DeadlineNS is the caller's remaining time budget for this request in
	// nanoseconds (0 = none). It travels as a relative duration rather than
	// an absolute instant so clock skew between coordinator and site cannot
	// distort it; the site re-anchors it on its own clock and enforces it
	// server-side (context deadline on the evaluation, write deadline on the
	// response).
	DeadlineNS int64
	// TraceID, when non-zero, asks the site to record spans for this
	// request and return them in the response; zero (the default) keeps the
	// evaluation entirely untraced.
	TraceID uint64
	// FlightID correlates the site's flight-recorder events with the
	// coordinator's; unlike TraceID it is set on every query and does not
	// enable span recording.
	FlightID uint64
	// opUpdate / opCrossIn payloads.
	Update StakeUpdate
	Delta  int
	// opReplPull payload: return up to MaxRecords WAL records with sequence
	// numbers strictly greater than FromSeq. WaitNS > 0 asks the site to
	// long-poll that long for new records before answering empty.
	FromSeq    uint64
	MaxRecords int
	WaitNS     int64
}

// response is the site -> client message.
type response struct {
	// ID echoes the request this response answers.
	ID uint64
	// Err is non-empty when the site failed to serve the request; Code
	// classifies it (codeSite, codeDeadline, codeCancelled) so the client
	// can rebuild the typed error.
	Err  string
	Code uint8
	// SiteID identifies the partition (opInfo and opEvaluate).
	SiteID int
	// Ans is the encoded control.Answer for opEvaluate.
	Ans int8
	// GraphBytes is the reduced partition in CCPG1 format, empty when the
	// answer was decided locally.
	GraphBytes []byte
	// Stats, ElapsedNS and FromCache mirror PartialAnswer.
	Stats     control.Stats
	ElapsedNS int64
	FromCache bool
	// UpdateRes and Acted answer opUpdate and opCrossIn.
	UpdateRes UpdateResult
	Acted     bool
	// Epoch and NotModified support the coordinator-side cache.
	Epoch       uint64
	NotModified bool
	// Spans are the site-local trace spans of a traced evaluate request
	// (request.TraceID != 0), with StartNS relative to the site's own
	// request start; the coordinator re-bases them when stitching.
	Spans []obs.Span
	// Replication payloads. Records is a frame-encoded WAL record batch
	// (store.EncodeRecords); Snapshot a CCPP1 partition image covering
	// SnapSeq. DurableSeq is the site's durable sequence number at answer
	// time — the follower's lag reference. Truncated tells a puller the
	// records it needs were deleted by checkpointing: re-bootstrap.
	Records    []byte
	Snapshot   []byte
	SnapSeq    uint64
	DurableSeq uint64
	Truncated  bool
}

// Error classification codes carried in response.Code.
const (
	codeSite      uint8 = 0 // site-side failure (default)
	codeDeadline  uint8 = 1 // the request's deadline expired server-side
	codeCancelled uint8 = 2 // the server cancelled the request (shutdown)
)

// errResponse builds the error response for a failed request, classifying
// context errors so the client can surface a typed DeadlineError or
// CancelledError instead of an opaque SiteError.
func errResponse(siteID int, err error) *response {
	resp := &response{SiteID: siteID, Err: err.Error(), Code: codeSite}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		resp.Code = codeDeadline
	case errors.Is(err, context.Canceled):
		resp.Code = codeCancelled
	}
	return resp
}

// encodePartial converts a PartialAnswer for the wire.
func encodePartial(pa *PartialAnswer) (*response, error) {
	resp := &response{
		SiteID:      pa.SiteID,
		Ans:         int8(pa.Ans),
		Stats:       pa.Stats,
		ElapsedNS:   pa.Elapsed.Nanoseconds(),
		FromCache:   pa.FromCache,
		Epoch:       pa.Epoch,
		NotModified: pa.NotModified,
		Spans:       pa.Spans,
	}
	if pa.Reduced != nil {
		var buf bytes.Buffer
		if err := pa.Reduced.WriteBinary(&buf); err != nil {
			return nil, fmt.Errorf("dist: encoding reduced graph: %w", err)
		}
		resp.GraphBytes = buf.Bytes()
	}
	return resp, nil
}

// decodePartial converts a wire response back to a PartialAnswer. pool, when
// non-nil, supplies the scratch graph that a live (non-cached) partial
// decodes into — the copy-free arena path, returned for reuse by
// PartialAnswer.Release. Cached partials always decode into a fresh graph,
// because the coordinator retains them across queries.
func decodePartial(resp *response, pool *sync.Pool) (*PartialAnswer, error) {
	pa := &PartialAnswer{
		SiteID:      resp.SiteID,
		Ans:         control.Answer(resp.Ans),
		Stats:       resp.Stats,
		Elapsed:     durationNS(resp.ElapsedNS),
		FromCache:   resp.FromCache,
		Epoch:       resp.Epoch,
		NotModified: resp.NotModified,
		Spans:       resp.Spans,
	}
	if len(resp.GraphBytes) > 0 {
		if pool != nil && !resp.FromCache {
			scratch, _ := pool.Get().(*graph.Graph)
			// On a decode error the scratch graph's contents are unspecified;
			// it is deliberately not re-pooled.
			g, err := graph.DecodeBinaryInto(scratch, resp.GraphBytes)
			if err != nil {
				return nil, fmt.Errorf("dist: decoding reduced graph: %w", err)
			}
			pa.Reduced = g
			pa.pool = pool
		} else {
			g, err := graph.DecodeBinary(resp.GraphBytes)
			if err != nil {
				return nil, fmt.Errorf("dist: decoding reduced graph: %w", err)
			}
			pa.Reduced = g
		}
	}
	return pa, nil
}

// LocalClient drives a Site in-process. Payload bytes are still accounted by
// serializing the reduced graph, so local runs report the same traffic
// numbers a TCP deployment would. Contexts pass straight through to the
// site, so cancellation and deadlines behave exactly as they would across a
// real transport (minus the wire). It is safe for concurrent use.
type LocalClient struct {
	Site *Site
	// MeasureBytes disables payload serialization when false (faster, but
	// Bytes will read 0).
	MeasureBytes bool

	// mu guards the memoized payload size below. Cached partial answers
	// return the same *graph.Graph until the site's epoch moves, so the
	// counting WriteBinary pass runs once per cache generation instead of
	// once per query.
	mu        sync.Mutex
	lastGraph *graph.Graph
	lastBytes int64
}

// SiteID implements SiteClient.
func (c *LocalClient) SiteID() int { return c.Site.ID() }

// Precompute implements SiteClient.
func (c *LocalClient) Precompute(ctx context.Context) error {
	if _, err := c.Site.Precompute(ctx); err != nil {
		return ctxError(c.Site.ID(), "precompute", err)
	}
	return nil
}

// Evaluate implements SiteClient.
func (c *LocalClient) Evaluate(ctx context.Context, q control.Query, opts EvalOptions) (*PartialAnswer, int64, error) {
	pa, err := c.Site.Evaluate(ctx, q, opts)
	if err != nil {
		return nil, 0, ctxError(c.Site.ID(), "evaluate", err)
	}
	var n int64
	if c.MeasureBytes && pa.Reduced != nil {
		var err error
		if n, err = c.payloadBytes(pa.Reduced, pa.FromCache); err != nil {
			return nil, 0, &SiteError{SiteID: c.Site.ID(), Op: "evaluate", Msg: err.Error()}
		}
	}
	return pa, n, nil
}

// payloadBytes counts the CCPG1 size of g in a single pass. Cached partial
// answers (fromCache) keep one stable *Graph per epoch, so their size is
// memoized and across a batch only the first hit pays the serialization;
// live evaluations produce a fresh graph per query and are always counted.
func (c *LocalClient) payloadBytes(g *graph.Graph, fromCache bool) (int64, error) {
	if fromCache {
		c.mu.Lock()
		if g == c.lastGraph {
			n := c.lastBytes
			c.mu.Unlock()
			return n, nil
		}
		c.mu.Unlock()
	}
	var cw countWriter
	if err := g.WriteBinary(&cw); err != nil {
		return 0, err
	}
	if fromCache {
		c.mu.Lock()
		c.lastGraph, c.lastBytes = g, cw.n
		c.mu.Unlock()
	}
	return cw.n, nil
}

// Update implements SiteClient.
func (c *LocalClient) Update(ctx context.Context, up StakeUpdate) (UpdateResult, error) {
	if err := ctx.Err(); err != nil {
		return UpdateResult{}, ctxError(c.Site.ID(), "update", err)
	}
	return c.Site.ApplyEdgeUpdate(up)
}

// AdjustCrossIn implements SiteClient.
func (c *LocalClient) AdjustCrossIn(ctx context.Context, v graph.NodeID, delta int) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, ctxError(c.Site.ID(), "cross-in", err)
	}
	return c.Site.AdjustCrossIn(v, delta), nil
}

// Health implements HealthReporter: an in-process site is always reachable.
func (c *LocalClient) Health() SiteHealth {
	return SiteHealth{SiteID: c.Site.ID(), Connected: true}
}

// Epoch returns the site's current data epoch — the in-process counterpart
// of RemoteClient.Epoch, so routing tiers can treat both uniformly.
func (c *LocalClient) Epoch(ctx context.Context) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, ctxError(c.Site.ID(), "info", err)
	}
	return c.Site.Epoch(), nil
}

// countWriter counts bytes written to it.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
