package dist

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"ccp/internal/control"
	"ccp/internal/gen"
	"ccp/internal/graph"
	"ccp/internal/partition"
)

// TestConcurrentBatchMixedTransports hammers a mixed cluster — one in-process
// site and one TCP site sharing a multiplexed connection — with overlapping
// AnswerBatch and Answer calls while stake updates move epochs and the
// coordinator cache revalidates. Run under -race it proves the batch
// scheduler, the connection multiplexing and the snapshot cache; the final
// quiescent sweep proves no update was lost.
func TestConcurrentBatchMixedTransports(t *testing.T) {
	g := gen.ScaleFree(gen.ScaleFreeConfig{Nodes: 800, AvgOutDegree: 2, Seed: 29})
	pi, err := partition.ByContiguous(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	clients := []SiteClient{
		&LocalClient{Site: NewSite(pi.Parts[0], 2), MeasureBytes: true},
		startTCPSite(t, pi.Parts[1]),
	}
	coord := NewCoordinator(clients, Options{UseCache: true, Workers: 2, Concurrency: 4})
	if err := coord.PrecomputeAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	mirror := g.Clone()
	var mirrorMu sync.Mutex

	var wg sync.WaitGroup
	// Batch callers: concurrent batches through the scheduler.
	for b := 0; b < 2; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + b)))
			for round := 0; round < 3; round++ {
				qs := make([]control.Query, 8)
				for i := range qs {
					qs[i] = control.Query{
						S: graph.NodeID(rng.Intn(800)),
						T: graph.NodeID(rng.Intn(800)),
					}
				}
				if _, _, err := coord.AnswerBatch(context.Background(), qs); err != nil {
					t.Errorf("batch: %v", err)
					return
				}
			}
		}(b)
	}
	// A single-query caller interleaved with the batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(400))
		for i := 0; i < 10; i++ {
			q := control.Query{S: graph.NodeID(rng.Intn(800)), T: graph.NodeID(rng.Intn(800))}
			if _, _, err := coord.Answer(context.Background(), q); err != nil {
				t.Errorf("query: %v", err)
				return
			}
		}
	}()
	// Writers moving both sites' epochs under the cache: owners live at the
	// local site, owned companies at the TCP site, so every stake crosses.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + w)))
			for i := 0; i < 6; i++ {
				owner := graph.NodeID(w*10 + i)
				owned := graph.NodeID(400 + rng.Intn(400))
				if owner == owned {
					continue
				}
				mirrorMu.Lock()
				if mirror.InSum(owned) > 0.85 || mirror.HasEdge(owner, owned) {
					mirrorMu.Unlock()
					continue
				}
				if err := mirror.AddEdge(owner, owned, 0.1); err != nil {
					mirrorMu.Unlock()
					continue
				}
				mirrorMu.Unlock()
				if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: owner, Owned: owned, Weight: 0.1}); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(w)
	}
	// A precomputer racing with everything.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := coord.PrecomputeAll(context.Background()); err != nil {
				t.Errorf("precompute: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiescent: one concurrent batch must agree with the mirror everywhere.
	rng := rand.New(rand.NewSource(888))
	qs := make([]control.Query, 24)
	for i := range qs {
		qs[i] = control.Query{S: graph.NodeID(rng.Intn(800)), T: graph.NodeID(rng.Intn(800))}
	}
	got, _, err := coord.AnswerBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if want := control.CBE(mirror, q); got[i] != want {
			t.Fatalf("%v after quiescence: got %v, want %v", q, got[i], want)
		}
	}
}

// TestAnswerBatchConcurrentStress drives the sharded batch path hard: a
// 4-site cluster answers merge-path batches (UseCache + ForcePartial) at
// concurrency 8 with stake updates streamed in between rounds, and a final
// round races updates against the batch itself. Every deterministic round
// must agree with a serial coordinator over the same data and with the
// centralized evaluation, and the aggregate metrics must conserve counts —
// nothing lost to concurrent accumulation. Run under -race by check.sh.
func TestAnswerBatchConcurrentStress(t *testing.T) {
	eu := gen.EU(gen.EUConfig{Countries: 4, NodesPerCountry: 900, InterconnectRate: 0.01, Seed: 77})
	g := eu.G
	mirror := g.Clone()
	conc := batchCluster(t, g, Options{UseCache: true, ForcePartial: true, Workers: 2, Concurrency: 8})
	serial := batchCluster(t, g, Options{UseCache: true, ForcePartial: true, Workers: 1, Concurrency: 1})
	qs := batchQueries(g, 40, 13)

	// pickUpdate finds the next stake the ownership budget allows, starting
	// the owned-company scan at a moving offset so rounds touch different
	// sites.
	next := graph.NodeID(g.Cap() / 3)
	pickUpdate := func(owner graph.NodeID) StakeUpdate {
		up := StakeUpdate{Owner: owner, Owned: next, Weight: 0.04}
		for mirror.InSum(up.Owned) > 0.9 || mirror.HasEdge(up.Owner, up.Owned) || !mirror.Alive(up.Owned) || up.Owned == up.Owner {
			up.Owned = (up.Owned + 1) % graph.NodeID(g.Cap())
		}
		next = (up.Owned + graph.NodeID(g.Cap()/5)) % graph.NodeID(g.Cap())
		return up
	}
	applyEverywhere := func(up StakeUpdate) {
		t.Helper()
		if err := mirror.MergeEdge(up.Owner, up.Owned, up.Weight); err != nil {
			t.Fatal(err)
		}
		for _, c := range []*Coordinator{conc, serial} {
			if err := c.ApplyUpdate(context.Background(), up); err != nil {
				t.Fatal(err)
			}
		}
	}

	for round := 0; round < 3; round++ {
		if round > 0 {
			applyEverywhere(pickUpdate(graph.NodeID(round)))
		}
		gotC, mc, err := conc.AnswerBatch(context.Background(), qs)
		if err != nil {
			t.Fatalf("round %d concurrent: %v", round, err)
		}
		gotS, _, err := serial.AnswerBatch(context.Background(), qs)
		if err != nil {
			t.Fatalf("round %d serial: %v", round, err)
		}
		for i := range qs {
			if gotC[i] != gotS[i] {
				t.Fatalf("round %d query %d (%v): concurrent=%v serial=%v",
					round, i, qs[i], gotC[i], gotS[i])
			}
			if cbe := control.CBE(mirror, qs[i]); gotC[i] != cbe {
				t.Fatalf("round %d query %d (%v): batch=%v centralized=%v",
					round, i, qs[i], gotC[i], cbe)
			}
		}
		// Conservation: every query contacts every site, reaches the merge
		// path (ForcePartial), and either hits a snapshot or builds one —
		// counts lost to racing workers would break these identities.
		if mc.SitesQueried != 4*len(qs) {
			t.Fatalf("round %d: SitesQueried = %d, want %d", round, mc.SitesQueried, 4*len(qs))
		}
		if mc.MergedQueries != len(qs) {
			t.Fatalf("round %d: MergedQueries = %d, want %d", round, mc.MergedQueries, len(qs))
		}
		if mc.SnapshotHits+mc.SnapshotBuilds != mc.MergedQueries {
			t.Fatalf("round %d: hits(%d)+builds(%d) != merged(%d)",
				round, mc.SnapshotHits, mc.SnapshotBuilds, mc.MergedQueries)
		}
		// After the warmup round the skeletons must actually be hit; an
		// update invalidates only the touched sites' skeletons, so later
		// rounds rebuild a few and hit the rest.
		if round > 0 && mc.SnapshotHits == 0 {
			t.Fatalf("round %d: no snapshot hits after warmup: %+v", round, mc)
		}
		if mc.SnapshotBuilds == 0 {
			t.Fatalf("round %d: no snapshot builds recorded: %+v", round, mc)
		}
	}

	// Final round: updates race the batch. Answers are allowed to move with
	// the data; the run must stay error-free (the race detector watches the
	// sharded caches, the pooled scratch, and snapshot invalidation).
	ups := make([]StakeUpdate, 4)
	for i := range ups {
		ups[i] = pickUpdate(graph.NodeID(10 + i))
	}
	done := make(chan error, 1)
	go func() {
		for _, up := range ups {
			if err := conc.ApplyUpdate(context.Background(), up); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	if _, _, err := conc.AnswerBatch(context.Background(), qs); err != nil {
		t.Fatalf("racing batch: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("racing update: %v", err)
	}
}

// TestConcurrentQueriesAndUpdates hammers a cluster with parallel queries,
// updates and precomputations. Run under -race it proves the site locking;
// the final quiescent check proves no update was lost.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	g := gen.ScaleFree(gen.ScaleFreeConfig{Nodes: 800, AvgOutDegree: 2, Seed: 17})
	pi, err := partition.ByContiguous(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	sites := make([]*Site, 2)
	clients := make([]SiteClient, 2)
	for i, p := range pi.Parts {
		sites[i] = NewSite(p, 2)
		clients[i] = &LocalClient{Site: sites[i]}
	}
	coord := NewCoordinator(clients, Options{UseCache: true, Workers: 2})

	mirror := g.Clone()
	var mirrorMu sync.Mutex

	var wg sync.WaitGroup
	// Writers: each adds a few stakes from a disjoint owner range so the
	// mirror can track them deterministically.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 8; i++ {
				owner := graph.NodeID(w*10 + i)
				owned := graph.NodeID(400 + rng.Intn(400))
				if owner == owned {
					continue
				}
				mirrorMu.Lock()
				// Keep the ownership invariant: skip if no budget.
				if mirror.InSum(owned) > 0.85 || mirror.HasEdge(owner, owned) {
					mirrorMu.Unlock()
					continue
				}
				if err := mirror.AddEdge(owner, owned, 0.1); err != nil {
					mirrorMu.Unlock()
					continue
				}
				mirrorMu.Unlock()
				if err := coord.ApplyUpdate(context.Background(), StakeUpdate{Owner: owner, Owned: owned, Weight: 0.1}); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(w)
	}
	// Readers: random queries; answers may reflect any prefix of the
	// concurrent updates, so only errors are checked here.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for i := 0; i < 12; i++ {
				q := control.Query{
					S: graph.NodeID(rng.Intn(800)),
					T: graph.NodeID(rng.Intn(800)),
				}
				if _, _, err := coord.Answer(context.Background(), q); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(r)
	}
	// A precomputer racing with everything.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := coord.PrecomputeAll(context.Background()); err != nil {
				t.Errorf("precompute: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Quiescent: the cluster must now agree with the mirror everywhere.
	rng := rand.New(rand.NewSource(999))
	for i := 0; i < 30; i++ {
		q := control.Query{S: graph.NodeID(rng.Intn(800)), T: graph.NodeID(rng.Intn(800))}
		want := control.CBE(mirror, q)
		got, _, err := coord.Answer(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v after quiescence: got %v, want %v", q, got, want)
		}
	}
}
