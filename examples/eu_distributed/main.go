// EU distributed scenario: a coordinator at the European level answers
// company control queries over national company graphs, each held by its
// national central bank behind a TCP endpoint — the deployment of Section
// VII / Figure 7 of the paper.
//
// The example starts one worker site per country on loopback TCP, connects
// a coordinator, pre-computes the query-independent partial answers, and
// compares cached and uncached query latencies.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"ccp"
)

func main() {
	ctx := context.Background()

	const countries = 6
	const perCountry = 8000

	fmt.Printf("generating a %d-country EU graph, %d companies per country...\n",
		countries, perCountry)
	eu := ccp.GenerateEU(ccp.EUConfig{
		Countries:        countries,
		NodesPerCountry:  perCountry,
		InterconnectRate: 0.01, // ~1% border companies, like the real EU
		Seed:             2026,
	})
	fmt.Printf("  %d companies, %d shareholdings, %d cross-border stakes\n",
		eu.G.NumNodes(), eu.G.NumEdges(), eu.CrossEdges)

	// Plant one known cross-border control chain so the demo shows a
	// positive answer: a company in country 0 takes 60% of one in country
	// 1, which takes 60% of one in country 2.
	chain := make([]ccp.NodeID, 3)
	for c := range chain {
		for v := c * perCountry; ; v++ {
			if eu.G.InSum(ccp.NodeID(v)) < 0.35 {
				chain[c] = ccp.NodeID(v)
				break
			}
		}
	}
	for i := 0; i < len(chain)-1; i++ {
		if err := eu.G.AddEdge(chain[i], chain[i+1], 0.6); err != nil {
			log.Fatal(err)
		}
	}

	// Partition by country and start one worker site per country.
	pi, err := ccp.PartitionByAssignment(eu.G, eu.Country, countries)
	if err != nil {
		log.Fatal(err)
	}
	addrs := make([]string, countries)
	for i, p := range pi.Parts {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		go func(p *ccp.Partition) {
			if err := ccp.ServeSite(ctx, l, p, 0); err != nil {
				log.Printf("site: %v", err)
			}
		}(p)
		addrs[i] = l.Addr().String()
		fmt.Printf("  country %d site listening on %s (%d members, %d boundary nodes)\n",
			i, addrs[i], len(p.Members), len(p.Boundary()))
	}

	cluster, err := ccp.ConnectCluster(ctx, addrs, ccp.ClusterOptions{UseCache: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\npre-computing query-independent partial answers at all sites...")
	start := time.Now()
	if err := cluster.Precompute(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  done in %v\n", time.Since(start))

	// Cross-border control queries: the planted chain (which spans three
	// countries and must come back true) plus random pairs.
	rng := rand.New(rand.NewSource(7))
	queries := [][2]ccp.NodeID{{chain[0], chain[2]}}
	for i := 0; i < 4; i++ {
		s := ccp.NodeID(rng.Intn(perCountry)) // a company in country 0
		t := ccp.NodeID((1+rng.Intn(countries-1))*perCountry + rng.Intn(perCountry))
		queries = append(queries, [2]ccp.NodeID{s, t})
	}
	fmt.Println("\ncross-border control queries:")
	for _, q := range queries {
		start := time.Now()
		ans, m, err := cluster.Controls(ctx, q[0], q[1])
		if err != nil {
			log.Fatal(err)
		}
		where := "merged at coordinator"
		if m.DecidedBySite >= 0 {
			where = fmt.Sprintf("decided by site %d", m.DecidedBySite)
		}
		fmt.Printf("  q_c(%d,%d) = %-5v in %-12v (%s, %d cache hits, %dB shipped)\n",
			q[0], q[1], ans, time.Since(start), where, m.CacheHits, m.BytesTransferred)
	}
}
